(* Tests for context-free machinery: CFGs as inductive linear types,
   Earley and CYK oracles, LL(1), mu-regular expressions (Leiss), the Dyck
   language (Thm 4.13) and the Fig 15 expression parser (Thm 4.14). *)

module Cfg = Lambekd_cfg.Cfg
module Earley = Lambekd_cfg.Earley
module Cyk = Lambekd_cfg.Cyk
module Binarize = Lambekd_cfg.Binarize
module CykD = Lambekd_cfg.Cyk_dense
module Ff = Lambekd_cfg.First_follow
module Ll1 = Lambekd_cfg.Ll1
module Mu = Lambekd_cfg.Mu_regex
module Dyck = Lambekd_cfg.Dyck
module Expr = Lambekd_cfg.Expr
module R = Lambekd_regex.Regex
module Dauto = Lambekd_automata.Dauto
module P = Lambekd_grammar.Ptree
module E = Lambekd_grammar.Enum
module L = Lambekd_grammar.Language
module A = Lambekd_grammar.Ambiguity
module T = Lambekd_grammar.Transformer
module Q = Lambekd_grammar.Equivalence
module I = Lambekd_grammar.Index
module Probe = Lambekd_telemetry.Probe

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* S -> eps | a S b   (a^n b^n) *)
let anbn =
  Cfg.make ~start:"S"
    ~productions:[ ("S", []); ("S", [ Cfg.T 'a'; Cfg.N "S"; Cfg.T 'b' ]) ]

(* ambiguous: S -> eps | SS | aSb; nullable + left recursion stress *)
let hard =
  Cfg.make ~start:"S"
    ~productions:
      [ ("S", []);
        ("S", [ Cfg.N "S"; Cfg.N "S" ]);
        ("S", [ Cfg.T 'a'; Cfg.N "S"; Cfg.T 'b' ]) ]

(* balanced parens as a CFG *)
let dyck_cfg =
  Cfg.make ~start:"D"
    ~productions:
      [ ("D", []); ("D", [ Cfg.T '('; Cfg.N "D"; Cfg.T ')'; Cfg.N "D" ]) ]

let anbn_member w =
  let n = String.length w / 2 in
  String.length w mod 2 = 0
  && String.for_all (fun c -> c = 'a') (String.sub w 0 n)
  && String.for_all (fun c -> c = 'b') (String.sub w n n)

(* --- CFG structure ------------------------------------------------------- *)

let test_cfg_make () =
  Alcotest.(check (list string)) "nonterminals" [ "S" ] (Cfg.nonterminals anbn);
  Alcotest.(check (list char)) "alphabet" [ 'a'; 'b' ] (Cfg.alphabet anbn);
  check_int "productions of S" 2 (List.length (Cfg.productions_of anbn "S"));
  match Cfg.make ~start:"S" ~productions:[ ("S", [ Cfg.N "Missing" ]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected missing-nonterminal error"

let test_cfg_to_grammar () =
  let g = Cfg.to_grammar anbn in
  List.iter
    (fun w ->
      check_bool (Fmt.str "agree %S" w) (anbn_member w) (E.accepts g w))
    (L.words [ 'a'; 'b' ] ~max_len:6);
  check_int "unambiguous" 1 (E.count g "aabb")

(* --- Earley ----------------------------------------------------------------- *)

let test_earley_basic () =
  List.iter
    (fun w ->
      check_bool (Fmt.str "anbn %S" w) (anbn_member w)
        (Earley.recognizes anbn w))
    (L.words [ 'a'; 'b' ] ~max_len:6)

let test_earley_hard () =
  (* `hard` accepts exactly the balanced a/b strings (a=open, b=close) *)
  let balanced w =
    let ok = ref true and depth = ref 0 in
    String.iter
      (fun c ->
        if c = 'a' then incr depth else decr depth;
        if !depth < 0 then ok := false)
      w;
    !ok && !depth = 0
  in
  List.iter
    (fun w ->
      check_bool (Fmt.str "hard %S" w) (balanced w) (Earley.recognizes hard w))
    (L.words [ 'a'; 'b' ] ~max_len:6)

let test_earley_parse_tree () =
  match Earley.parse anbn "aabb" with
  | None -> Alcotest.fail "expected a parse"
  | Some t ->
    Alcotest.(check string) "yield" "aabb" (Earley.tree_yield t);
    let pt = Earley.tree_to_ptree t in
    check_bool "genuine parse" true
      (List.exists (P.equal pt) (E.parses (Cfg.to_grammar anbn) "aabb"))

let test_earley_parse_hard () =
  List.iter
    (fun w ->
      match Earley.parse hard w with
      | Some t -> Alcotest.(check string) "yield" w (Earley.tree_yield t)
      | None ->
        if Earley.recognizes hard w then
          Alcotest.failf "recognized but no tree for %S" w)
    [ ""; "ab"; "abab"; "aabb"; "aababb" ]

let test_earley_chart_size_grows () =
  let s1 = Earley.chart_size anbn "aabb" in
  let s2 = Earley.chart_size anbn "aaaabbbb" in
  check_bool "chart grows" true (s2 > s1)

(* --- CYK ---------------------------------------------------------------------- *)

let test_cyk_matches_earley () =
  List.iter
    (fun cfg ->
      let cnf = Cyk.of_cfg cfg in
      List.iter
        (fun w ->
          check_bool (Fmt.str "cyk=earley %S" w)
            (Earley.recognizes cfg w)
            (Cyk.recognizes cnf w))
        (L.words (Cfg.alphabet cfg) ~max_len:6))
    [ anbn; hard; dyck_cfg ]

let test_cyk_empty () =
  check_bool "anbn nullable" true (Cyk.accepts_empty (Cyk.of_cfg anbn));
  let no_eps = Cfg.make ~start:"S" ~productions:[ ("S", [ Cfg.T 'a' ]) ] in
  check_bool "no eps" false (Cyk.accepts_empty (Cyk.of_cfg no_eps));
  check_bool "rules exist" true (Cyk.rule_count (Cyk.of_cfg anbn) > 0)

(* The pooled flat-chart arena must be invisible: verdicts with a shared
   scratch across many calls (including a longer word after shorter
   ones, and vice versa) equal the scratch-free ones, and warm calls
   actually reuse the arena. *)
let test_cyk_scratch_reuse () =
  let was_enabled = Probe.enabled () in
  Probe.enable ();
  let reuse = Probe.counter "cyk.scratch_reuse" in
  let before = Probe.value reuse in
  let sc = Cyk.scratch () in
  List.iter
    (fun cfg ->
      let cnf = Cyk.of_cfg cfg in
      List.iter
        (fun w ->
          check_bool (Fmt.str "scratch verdict %S" w)
            (Cyk.recognizes cnf w)
            (Cyk.recognizes ~scratch:sc cnf w))
        ([ "aaabbb"; "ab"; ""; "aabbab" ]
        @ L.words (Cfg.alphabet cfg) ~max_len:5))
    [ anbn; hard; dyck_cfg ];
  check_bool "warm calls reuse the arena" true (Probe.value reuse > before);
  if not was_enabled then Probe.disable ()

(* --- FIRST/FOLLOW and LL(1) ----------------------------------------------------- *)

(* classic LL(1) expression grammar:
   E -> T E', E' -> eps | + T E', T -> n | ( E ) *)
let ll1_expr =
  Cfg.make ~start:"E"
    ~productions:
      [ ("E", [ Cfg.N "T"; Cfg.N "E'" ]);
        ("E'", []);
        ("E'", [ Cfg.T '+'; Cfg.N "T"; Cfg.N "E'" ]);
        ("T", [ Cfg.T 'n' ]);
        ("T", [ Cfg.T '('; Cfg.N "E"; Cfg.T ')' ]) ]

let test_first_follow () =
  let ff = Ff.compute ll1_expr in
  check_bool "E' nullable" true (Ff.nullable ff "E'");
  check_bool "E not nullable" false (Ff.nullable ff "E");
  Alcotest.(check (list char)) "first E" [ '('; 'n' ] (Ff.first ff "E");
  Alcotest.(check (list char)) "first E'" [ '+' ] (Ff.first ff "E'");
  Alcotest.(check (list char)) "follow E" [ ')' ] (Ff.follow ff "E");
  Alcotest.(check (list char)) "follow E'" [ ')' ] (Ff.follow ff "E'");
  let first, nullable = Ff.first_of_seq ff [ Cfg.N "E'"; Cfg.T 'x' ] in
  Alcotest.(check (list char)) "seq first" [ '+'; 'x' ] first;
  check_bool "seq not nullable" false nullable

let test_ll1_build () =
  check_bool "ll1_expr is LL(1)" true (Ll1.is_ll1 ll1_expr);
  check_bool "hard is not LL(1)" false (Ll1.is_ll1 hard);
  match Ll1.build hard with
  | Error c -> check_bool "conflict reported" true (c.Ll1.nonterminal <> "")
  | Ok _ -> Alcotest.fail "expected conflict"

let test_ll1_parse () =
  let table = Result.get_ok (Ll1.build ll1_expr) in
  List.iter
    (fun w ->
      let expected = Earley.recognizes ll1_expr w in
      match Ll1.parse table w with
      | Ok t ->
        check_bool (Fmt.str "earley agrees %S" w) true expected;
        Alcotest.(check string) "yield" w (Earley.tree_yield t)
      | Error _ -> check_bool (Fmt.str "earley agrees %S" w) false expected)
    (L.words [ 'n'; '+'; '('; ')' ] ~max_len:4)

(* --- mu-regular expressions -------------------------------------------------------- *)

let test_mu_regex_basic () =
  let e =
    Mu.Mu
      ("X", Mu.Alt (Mu.Eps, Mu.Seq (Mu.Chr 'a', Mu.Seq (Mu.Var "X", Mu.Chr 'b'))))
  in
  check_bool "closed" true (Mu.is_closed e);
  check_bool "open var" false (Mu.is_closed (Mu.Var "X"));
  let g = Mu.to_grammar e in
  List.iter
    (fun w -> check_bool (Fmt.str "%S" w) (anbn_member w) (E.accepts g w))
    (L.words [ 'a'; 'b' ] ~max_len:6)

let test_mu_regex_star_is_mu () =
  let star = Mu.of_regex (R.star (R.chr 'a')) in
  let mu = Mu.Mu ("X", Mu.Alt (Mu.Eps, Mu.Seq (Mu.Chr 'a', Mu.Var "X"))) in
  check_bool "same language" true
    (L.equal_upto (Mu.to_grammar star) (Mu.to_grammar mu) [ 'a'; 'b' ]
       ~max_len:5)

let test_mu_to_cfg () =
  let e =
    Mu.Mu
      ("X", Mu.Alt (Mu.Eps, Mu.Seq (Mu.Chr 'a', Mu.Seq (Mu.Var "X", Mu.Chr 'b'))))
  in
  let cfg = Mu.to_cfg e in
  List.iter
    (fun w ->
      check_bool (Fmt.str "%S" w) (anbn_member w) (Earley.recognizes cfg w))
    (L.words [ 'a'; 'b' ] ~max_len:6)

let test_cfg_to_mu () =
  List.iter
    (fun cfg ->
      let e = Mu.of_cfg cfg in
      check_bool "closed" true (Mu.is_closed e);
      let g = Mu.to_grammar e in
      List.iter
        (fun w ->
          check_bool
            (Fmt.str "of_cfg agrees on %S" w)
            (Earley.recognizes cfg w)
            (E.accepts g w))
        (L.words (Cfg.alphabet cfg) ~max_len:5))
    [ anbn; dyck_cfg; ll1_expr ]

let test_mu_subst () =
  let open Mu in
  check_bool "subst var" true (subst "x" Eps (Var "x") = Eps);
  check_bool "no capture" true
    (subst "x" Eps (Mu ("x", Var "x")) = Mu ("x", Var "x"));
  check_bool "under binder" true
    (subst "y" Eps (Mu ("x", Seq (Var "x", Var "y")))
    = Mu ("x", Seq (Var "x", Eps)))

(* --- Dyck (Theorem 4.13) ------------------------------------------------------------ *)

let dyck_words = L.words Dyck.alphabet ~max_len:6

let test_dyck_language () =
  let spec w =
    let ok = ref true and depth = ref 0 in
    String.iter
      (fun c ->
        if c = '(' then incr depth else decr depth;
        if !depth < 0 then ok := false)
      w;
    !ok && !depth = 0
  in
  List.iter
    (fun w ->
      check_bool (Fmt.str "grammar %S" w) (spec w) (E.accepts Dyck.grammar w);
      check_bool (Fmt.str "parser %S" w) (spec w) (Dyck.balanced w);
      check_bool
        (Fmt.str "automaton %S" w)
        (spec w)
        (Dauto.accepts Dyck.automaton w))
    dyck_words

let test_dyck_unambiguous () =
  List.iter
    (fun w ->
      check_bool (Fmt.str "one parse %S" w) true (A.unambiguous_at Dyck.grammar w))
    dyck_words

let test_dyck_strong_equivalence () =
  check_bool "weak" true (Q.check_weak Dyck.equivalence Dyck.alphabet ~max_len:6);
  check_bool "strong" true
    (Q.check_strong Dyck.equivalence Dyck.alphabet ~max_len:6)

let test_dyck_parse_result () =
  (match Dyck.parse "(())()" with
   | Ok d ->
     Alcotest.(check string) "yield" "(())()" (P.yield d);
     check_bool "genuine parse" true
       (List.exists (P.equal d) (E.parses Dyck.grammar "(())()"))
   | Error _ -> Alcotest.fail "expected Ok");
  match Dyck.parse "(()" with
  | Error trace ->
    Alcotest.(check string) "rejecting trace yield" "(()" (P.yield trace);
    check_bool "trace in rejecting grammar" true
      (List.exists (P.equal trace)
         (E.parses (Dauto.rejecting_traces Dyck.automaton) "(()"))
  | Ok _ -> Alcotest.fail "expected Error"

let test_dyck_vs_earley () =
  List.iter
    (fun w ->
      check_bool
        (Fmt.str "dyck=earley %S" w)
        (Earley.recognizes dyck_cfg w)
        (Dyck.balanced w))
    dyck_words

(* --- Expr (Theorem 4.14) -------------------------------------------------------------- *)

let expr_words = L.words Expr.alphabet ~max_len:4

(* reference CFG for the expression language *)
let expr_cfg =
  Cfg.make ~start:"E"
    ~productions:
      [ ("E", [ Cfg.N "A" ]);
        ("E", [ Cfg.N "A"; Cfg.T '+'; Cfg.N "E" ]);
        ("A", [ Cfg.T 'n' ]);
        ("A", [ Cfg.T '('; Cfg.N "E"; Cfg.T ')' ]) ]

let test_expr_language () =
  List.iter
    (fun w ->
      let expected = Earley.recognizes expr_cfg w in
      check_bool (Fmt.str "grammar %S" w) expected (E.accepts Expr.exp w);
      check_bool (Fmt.str "automaton %S" w) expected (Expr.accepts w))
    expr_words

let test_expr_sigma_total_unambiguous () =
  List.iter
    (fun w ->
      check_int (Fmt.str "exactly one %S" w) 1 (E.count Expr.o_sigma w))
    (L.words Expr.alphabet ~max_len:3)

let test_expr_parse_o_genuine () =
  List.iter
    (fun w ->
      let b, t = Expr.parse_o w in
      check_bool (Fmt.str "genuine O-parse %S" w) true
        (List.exists (P.equal t) (E.parses (Expr.o_grammar 0 b) w)))
    (L.words Expr.alphabet ~max_len:3)

let test_expr_parse () =
  (match Expr.parse "n+(n+n)" with
   | Ok e ->
     Alcotest.(check string) "yield" "n+(n+n)" (P.yield e);
     check_bool "genuine Exp parse" true
       (List.exists (P.equal e) (E.parses Expr.exp "n+(n+n)"))
   | Error _ -> Alcotest.fail "expected Ok");
  match Expr.parse "n+" with
  | Error trace ->
    Alcotest.(check string) "trace yield" "n+" (P.yield trace);
    check_bool "genuine rejecting trace" true
      (List.exists (P.equal trace) (E.parses (Expr.o_grammar 0 false) "n+"))
  | Ok _ -> Alcotest.fail "expected Error"

let test_expr_weak_equivalence () =
  check_bool "thm 4.14 weak equivalence" true
    (Q.check_weak Expr.equivalence Expr.alphabet ~max_len:4)

let test_expr_right_associated () =
  match Expr.parse "n+n+n" with
  | Ok e ->
    let _, body = P.as_roll e in
    let tag, payload = P.as_inj body in
    check_bool "top is add" true (I.equal tag (I.S "add"));
    (match payload with
     | P.Pair (_, P.Pair (_, rest)) ->
       let _, body' = P.as_roll rest in
       let tag', _ = P.as_inj body' in
       check_bool "nested add" true (I.equal tag' (I.S "add"))
     | _ -> Alcotest.fail "malformed add")
  | Error _ -> Alcotest.fail "expected Ok"

let test_expr_eval () =
  let value w =
    match Expr.parse w with
    | Ok e -> Expr.eval e
    | Error _ -> Alcotest.failf "expected %S to parse" w
  in
  check_int "n" 1 (value "n");
  check_int "n+n" 2 (value "n+n");
  check_int "(n+n)+n" 3 (value "(n+n)+n");
  check_int "((n))" 1 (value "((n))");
  match Expr.parse "n+n" with
  | Ok e -> (
    match T.apply Expr.semantic_action e with
    | P.Inj (I.N 2, P.TopP "n+n") -> ()
    | t -> Alcotest.failf "unexpected semantic action result %a" P.pp t)
  | Error _ -> Alcotest.fail "expected Ok"


(* --- SLR(1) (paper future work: LR parsing) ----------------------------------- *)

module Slr = Lambekd_cfg.Slr

(* left-recursive expression grammar: SLR(1) but NOT LL(1) *)
let lr_expr =
  Cfg.make ~start:"E"
    ~productions:
      [ ("E", [ Cfg.N "E"; Cfg.T '+'; Cfg.N "A" ]);
        ("E", [ Cfg.N "A" ]);
        ("A", [ Cfg.T 'n' ]);
        ("A", [ Cfg.T '('; Cfg.N "E"; Cfg.T ')' ]) ]

let test_slr_accepts_left_recursion () =
  check_bool "lr_expr is SLR(1)" true (Slr.is_slr1 lr_expr);
  check_bool "lr_expr is not LL(1)" false (Ll1.is_ll1 lr_expr);
  check_bool "ambiguous grammar is not SLR(1)" false (Slr.is_slr1 hard);
  match Slr.build hard with
  | Error c -> check_bool "conflict state sane" true (c.Slr.state >= 0)
  | Ok _ -> Alcotest.fail "expected a conflict"

let test_slr_parse () =
  let table = Result.get_ok (Slr.build lr_expr) in
  check_bool "states" true (Slr.state_count table > 3);
  List.iter
    (fun w ->
      let expected = Earley.recognizes lr_expr w in
      match Slr.parse table w with
      | Ok t ->
        check_bool (Fmt.str "earley agrees %S" w) true expected;
        Alcotest.(check string) "yield" w (Earley.tree_yield t)
      | Error _ -> check_bool (Fmt.str "earley agrees %S" w) false expected)
    (L.words [ 'n'; '+'; '('; ')' ] ~max_len:5)

let test_slr_left_associated () =
  (* n+n+n under the left-recursive grammar: the top node reduces E+A with
     a nested E+A on the left *)
  let table = Result.get_ok (Slr.build lr_expr) in
  match Slr.parse table "n+n+n" with
  | Ok (Earley.Node ("E", 0, [ Earley.Node ("E", 0, _); _; _ ])) -> ()
  | Ok t -> Alcotest.failf "unexpected tree shape: %s" (Earley.tree_yield t)
  | Error e -> Alcotest.failf "parse failed: %a" Slr.pp_error e

let test_slr_dyck () =
  (* the Dyck CFG is SLR(1) too *)
  match Slr.build dyck_cfg with
  | Error c -> Alcotest.failf "unexpected conflict: %a" Slr.pp_conflict c
  | Ok table ->
    List.iter
      (fun w ->
        check_bool
          (Fmt.str "slr=earley %S" w)
          (Earley.recognizes dyck_cfg w)
          (Result.is_ok (Slr.parse table w)))
      (L.words [ '('; ')' ] ~max_len:6)

let prop_slr_earley_agree =
  QCheck.Test.make ~name:"slr agrees with earley on the expression grammar"
    ~count:100
    (QCheck.make
       ~print:(fun s -> s)
       QCheck.Gen.(
         map
           (fun cs -> String.concat "" (List.map (String.make 1) cs))
           (list_size (int_bound 10) (oneofl [ 'n'; '+'; '('; ')' ]))))
    (fun w ->
      let table = Result.get_ok (Slr.build lr_expr) in
      Bool.equal
        (Result.is_ok (Slr.parse table w))
        (Earley.recognizes lr_expr w))


(* --- random CFGs: triple differential (Earley / CYK / Gr model) --------------- *)

let random_cfg rng =
  (* 2-3 nonterminals over {a,b}; random short productions; always give
     the start symbol at least one production *)
  let nts = [ "S"; "T"; "U" ] in
  let num_nts = 2 + Random.State.int rng 2 in
  let nts = List.filteri (fun i _ -> i < num_nts) nts in
  let random_symbol () =
    if Random.State.bool rng then
      Cfg.T (if Random.State.bool rng then 'a' else 'b')
    else Cfg.N (List.nth nts (Random.State.int rng num_nts))
  in
  let random_rhs () =
    List.init (Random.State.int rng 4) (fun _ -> random_symbol ())
  in
  let productions =
    List.concat_map
      (fun nt ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> (nt, random_rhs ())))
      nts
  in
  Cfg.make ~start:"S" ~productions

let test_random_cfg_differential () =
  let rng = Random.State.make [| 271828 |] in
  let words = L.words [ 'a'; 'b' ] ~max_len:5 in
  for _ = 1 to 25 do
    let cfg = random_cfg rng in
    let cnf = Cyk.of_cfg cfg in
    let g = Cfg.to_grammar cfg in
    List.iter
      (fun w ->
        let earley = Earley.recognizes cfg w in
        if not (Bool.equal earley (Cyk.recognizes cnf w)) then
          Alcotest.failf "CYK disagrees with Earley on %S for@.%a" w Cfg.pp cfg;
        if not (Bool.equal earley (E.accepts g w)) then
          Alcotest.failf "Gr model disagrees with Earley on %S for@.%a" w
            Cfg.pp cfg)
      words
  done

let test_random_cfg_earley_trees () =
  let rng = Random.State.make [| 314159 |] in
  let words = L.words [ 'a'; 'b' ] ~max_len:4 in
  for _ = 1 to 25 do
    let cfg = random_cfg rng in
    List.iter
      (fun w ->
        if Earley.recognizes cfg w then
          match Earley.parse cfg w with
          | Some t ->
            if not (String.equal (Earley.tree_yield t) w) then
              Alcotest.failf "tree yield mismatch on %S" w
          | None ->
            Alcotest.failf "recognized %S but no tree for@.%a" w Cfg.pp cfg)
      words
  done

let test_random_cfg_mu_roundtrip () =
  let rng = Random.State.make [| 161803 |] in
  let words = L.words [ 'a'; 'b' ] ~max_len:4 in
  for _ = 1 to 10 do
    let cfg = random_cfg rng in
    let e = Mu.of_cfg cfg in
    let g = Mu.to_grammar e in
    List.iter
      (fun w ->
        if not (Bool.equal (Earley.recognizes cfg w) (E.accepts g w)) then
          Alcotest.failf "mu-regex roundtrip disagrees on %S for@.%a" w Cfg.pp
            cfg)
      words
  done


(* --- scaled unambiguity evidence via fast counting ------------------------------ *)

let test_expr_sigma_unambiguous_scaled () =
  (* count_fast makes exhaustive checking feasible at length 5 and random
     checking at length ~40 *)
  List.iter
    (fun w ->
      check_int (Fmt.str "exactly one %S" w) 1 (E.count_fast Expr.o_sigma w))
    (L.words Expr.alphabet ~max_len:4);
  let rng = Random.State.make [| 55 |] in
  for _ = 1 to 50 do
    let w =
      String.init
        (10 + Random.State.int rng 30)
        (fun _ -> List.nth Expr.alphabet (Random.State.int rng 4))
    in
    check_int (Fmt.str "exactly one %S" w) 1 (E.count_fast Expr.o_sigma w)
  done

let test_dyck_unambiguous_scaled () =
  let rng = Random.State.make [| 66 |] in
  for _ = 1 to 50 do
    let w = Dyck.random_balanced ~depth:6 rng in
    check_int (Fmt.str "one parse %S" w) 1 (E.count_fast Dyck.grammar w)
  done


(* --- LL(1) as a stack automaton (paper §1) -------------------------------------- *)

module La = Lambekd_cfg.Ll1_automaton
module Pd = Lambekd_parsing.Parser_def

let ll1_auto = La.dauto (Result.get_ok (Ll1.build ll1_expr))

let test_ll1_automaton_language () =
  List.iter
    (fun w ->
      check_bool (Fmt.str "agree %S" w)
        (Earley.recognizes ll1_expr w)
        (Dauto.accepts ll1_auto w))
    (L.words [ 'n'; '+'; '('; ')' ] ~max_len:5)

let test_ll1_automaton_traces () =
  (* Theorem 4.9 comes for free from the Dauto construction *)
  List.iter
    (fun w ->
      check_int (Fmt.str "one trace %S" w) 1
        (E.count_fast (Dauto.traces_grammar ll1_auto) w))
    (L.words [ 'n'; '+'; '('; ')' ] ~max_len:3);
  (* the accepting trace grammar recognizes exactly the language *)
  List.iter
    (fun w ->
      check_bool (Fmt.str "trace grammar %S" w)
        (Earley.recognizes ll1_expr w)
        (E.accepts (Dauto.accepting_traces ll1_auto) w))
    (L.words [ 'n'; '+'; '('; ')' ] ~max_len:4)

let test_ll1_automaton_parser () =
  let p = La.parser_of (Result.get_ok (Ll1.build ll1_expr)) in
  check_bool "sound" true (Pd.check_sound p [ 'n'; '+'; '(' ] ~max_len:3);
  check_bool "complete" true (Pd.check_complete p [ 'n'; '+'; '(' ] ~max_len:3);
  check_bool "disjoint" true (Pd.check_disjoint p [ 'n'; '+'; '(' ] ~max_len:3)

let test_ll1_automaton_stack_encoding () =
  let stack = [ Cfg.T 'a'; Cfg.N "E"; Cfg.T 'b' ] in
  check_bool "roundtrip encode" true
    (La.encode_stack stack
     = I.P (I.C 'a', I.P (I.S "E", I.P (I.C 'b', I.U))))

(* --- qcheck -------------------------------------------------------------------------- *)

let arb_dyck =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      map
        (fun n ->
          let rng = Random.State.make [| n |] in
          Dyck.random_balanced ~depth:5 rng)
        int)

let prop_dyck_roundtrip =
  QCheck.Test.make ~name:"dyck parse yields input and round-trips" ~count:100
    arb_dyck (fun w ->
      match Dyck.parse w with
      | Ok d ->
        String.equal (P.yield d) w
        && P.equal (T.apply Dyck.of_traces (T.apply Dyck.to_traces d)) d
      | Error _ -> false)

let arb_expr =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      map
        (fun n ->
          let rng = Random.State.make [| n |] in
          Expr.random_expr ~depth:4 rng)
        int)

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr parse yields input; eval counts nums" ~count:100
    arb_expr (fun w ->
      match Expr.parse w with
      | Ok e ->
        String.equal (P.yield e) w
        && Expr.eval e
           = String.fold_left (fun k c -> if c = 'n' then k + 1 else k) 0 w
      | Error _ -> false)

let arb_ab_word =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_bound 8) (oneofl [ 'a'; 'b' ])))

let prop_earley_cyk_agree =
  QCheck.Test.make ~name:"earley and cyk agree on `hard`" ~count:100
    arb_ab_word (fun w ->
      Bool.equal (Earley.recognizes hard w) (Cyk.recognizes_cfg hard w))

(* --- completer index ------------------------------------------------------ *)

(* The indexed completer (default) and the seed full-scan completer must
   construct the identical item set — same chart size — and agree on
   acceptance, across the stress grammars (ε-productions, left recursion,
   ambiguity) and on rejected inputs. *)
let test_earley_indexed_vs_scan () =
  let cases =
    [ (anbn, [ ""; "ab"; "aabb"; "aaabbb"; "aab"; "ba"; "abab" ]);
      (hard, [ ""; "ab"; "abab"; "aabb"; "abba"; "b"; "aabbab" ]);
      (dyck_cfg, [ ""; "()"; "()()"; "(())()"; ")("; "((" ]);
      (ll1_expr, [ "n"; "n+n"; "(n+n)+n"; "n+"; "" ]) ]
  in
  List.iter
    (fun (cfg, inputs) ->
      List.iter
        (fun w ->
          (* leo off: the shortcut deliberately builds a smaller item
             set, so size equality is stated for the classical chart *)
          let fast = Earley.run ~leo:false cfg w in
          let slow = Earley.run ~indexed:false cfg w in
          check_bool
            (Fmt.str "accepts agree on %S" w)
            (Earley.accepts slow) (Earley.accepts fast);
          check_int
            (Fmt.str "item sets agree on %S" w)
            (Earley.size slow) (Earley.size fast))
        inputs)
    cases

(* One run answers accepts, size and parse_tree without rebuilding, and
   matches the one-shot wrappers. *)
let test_earley_shared_chart () =
  let w = "(())()" in
  let ch = Earley.run dyck_cfg w in
  check_bool "accepts" true (Earley.accepts ch);
  check_int "size = legacy chart_size" (Earley.chart_size dyck_cfg w)
    (Earley.size ch);
  (match Earley.parse_tree ch with
  | Some t -> Alcotest.(check string) "tree yield" w (Earley.tree_yield t)
  | None -> Alcotest.fail "expected a parse tree");
  check_bool "legacy recognizes" true (Earley.recognizes dyck_cfg w)

let test_first_last () =
  let ff = Ff.compute ll1_expr in
  Alcotest.(check (list char)) "last E" (Ff.last ff "E") (Ff.last ff "T");
  check_bool "last T has ) and n" true
    (List.mem ')' (Ff.last ff "T") && List.mem 'n' (Ff.last ff "T"));
  let ffd = Ff.compute dyck_cfg in
  Alcotest.(check (list char)) "first D" [ '(' ] (Ff.first ffd "D");
  Alcotest.(check (list char)) "last D" [ ')' ] (Ff.last ffd "D")

(* --- Leo right recursion -------------------------------------------------- *)

(* E -> a | a E : the textbook right-recursive case.  The classical chart
   holds ~n²/2 items on a^n (every suffix carries the full completion
   chain); Leo's deterministic-reduction memo collapses each chain to its
   topmost item, so the chart is linear. *)
let right_rec =
  Cfg.make ~start:"E"
    ~productions:[ ("E", [ Cfg.T 'a' ]); ("E", [ Cfg.T 'a'; Cfg.N "E" ]) ]

let test_earley_leo_right_recursion () =
  let n = 2048 in
  let w = String.make n 'a' in
  let on = Earley.run right_rec w in
  let off = Earley.run ~leo:false right_rec w in
  check_bool "leo accepts a^2048" true (Earley.accepts on);
  check_bool "classical engine also accepts a^2048" true (Earley.accepts off);
  check_bool
    (Fmt.str "leo chart >= 10x smaller (%d vs %d items)" (Earley.size on)
       (Earley.size off))
    true
    (Earley.size on * 10 <= Earley.size off);
  check_bool
    (Fmt.str "leo chart linear (%d items for n=%d)" (Earley.size on) n)
    true
    (Earley.size on <= 16 * n);
  (match Earley.parse_tree on with
  | Some t ->
    check_bool "leo tree yields the input" true
      (String.equal (Earley.tree_yield t) w)
  | None -> Alcotest.fail "leo chart lost the parse");
  check_bool "leo rejects a^n b" false
    (Earley.accepts (Earley.run right_rec (w ^ "b")))

(* Leo on and off must be observationally identical: same acceptance,
   same parse tree (after the Leo chart re-materializes the completion
   facts its shortcuts skipped), and the Leo chart never larger. *)
let prop_leo_differential =
  QCheck.Test.make ~name:"leo on/off observationally identical" ~count:220
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 0x1e0 |] in
      let cfg = random_cfg rng in
      List.for_all
        (fun w ->
          let on = Earley.run cfg w in
          let off = Earley.run ~leo:false cfg w in
          Bool.equal (Earley.accepts on) (Earley.accepts off)
          && Earley.size on <= Earley.size off
          && Earley.parse_tree on = Earley.parse_tree off)
        (L.words [ 'a'; 'b' ] ~max_len:4))

(* --- dense CYK (binarize + bitset chart) --------------------------------- *)

(* Like {!random_cfg}, but biased toward the CNF pass's hard cases:
   ε-productions everywhere and bare unit rules (which form cycles as
   soon as two nonterminals pick each other). *)
let random_cfg_eps rng =
  let nts = [ "S"; "T"; "U" ] in
  let nt () = Cfg.N (List.nth nts (Random.State.int rng 3)) in
  let sym () =
    match Random.State.int rng 5 with
    | 0 -> Cfg.T 'a'
    | 1 -> Cfg.T 'b'
    | _ -> nt ()
  in
  let rhs () =
    match Random.State.int rng 5 with
    | 0 -> [] (* ε-heavy *)
    | 1 -> [ nt () ] (* unit rules, often cyclic *)
    | _ -> List.init (1 + Random.State.int rng 3) (fun _ -> sym ())
  in
  let productions =
    List.concat_map
      (fun n -> List.init (1 + Random.State.int rng 3) (fun _ -> (n, rhs ())))
      nts
  in
  Cfg.make ~start:"S" ~productions

(* The dense engine against both oracles — the indexed Earley recognizer
   and the legacy list CYK it shares a normal form with — over random
   grammars (half of them ε/unit-cycle heavy) and every short word.
   [~block:2] forces maximal tiling (length-5 words already produce
   middle tiles), so the product/sweep stages run under the oracle too;
   one shared scratch across all 220 grammars exercises the arena's
   stride-change resets. *)
let prop_cyk_dense_differential =
  let sc = CykD.scratch () in
  QCheck.Test.make ~name:"dense cyk agrees with earley and legacy cyk"
    ~count:220
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 0xcbc |] in
      let cfg = if seed land 1 = 0 then random_cfg rng else random_cfg_eps rng in
      let b = Binarize.of_cfg_exn cfg in
      let cnf = Cyk.of_cfg cfg in
      List.for_all
        (fun w ->
          let e = Earley.recognizes cfg w in
          Bool.equal e (CykD.accepts ~scratch:sc b w)
          && Bool.equal e (CykD.accepts ~block:2 ~scratch:sc b w)
          && Bool.equal e (Cyk.recognizes cnf w))
        (L.words [ 'a'; 'b' ] ~max_len:5))

(* Blocked and unblocked schedules compute the same fixpoint: identity
   at lengths straddling tile boundaries of the default block (64) and
   the auto-blocking threshold, on accepted and rejected inputs, with
   Earley as ground truth. *)
let test_cyk_dense_blocked_identity () =
  let dyck_b = Binarize.of_cfg_exn dyck_cfg in
  let anbn_b = Binarize.of_cfg_exn anbn in
  let sc = CykD.scratch () in
  let check_id name b cfg w =
    let plain = CykD.accepts ~scratch:sc b w in
    check_bool
      (Fmt.str "%s blocked=unblocked len %d" name (String.length w))
      plain
      (CykD.accepts ~block:CykD.default_block ~scratch:sc b w);
    check_bool
      (Fmt.str "%s matches earley len %d" name (String.length w))
      (Earley.recognizes cfg w) plain
  in
  List.iter
    (fun len ->
      let half = len / 2 in
      check_id "dyck" dyck_b dyck_cfg
        (String.concat "" (List.init half (fun _ -> "()"))
        ^ String.make (len - (2 * half)) '(');
      check_id "dyck" dyck_b dyck_cfg (String.make len '(');
      check_id "anbn" anbn_b anbn
        (String.make half 'a' ^ String.make (len - half) 'b'))
    [ 1; 2; 62; 63; 64; 65; 127; 128; 129 ];
  (* straddle the auto-blocking length threshold with the policy the
     service applies *)
  List.iter
    (fun len ->
      let w = String.make (len / 2) 'a' ^ String.make (len - (len / 2)) 'b' in
      let auto = CykD.accepts ?block:(CykD.auto_block len) ~scratch:sc anbn_b w in
      check_bool
        (Fmt.str "auto-block identity len %d" len)
        (CykD.accepts ~scratch:sc anbn_b w)
        auto)
    [ CykD.blocked_threshold - 1; CykD.blocked_threshold ];
  (* a byte outside the binarized alphabet short-circuits to reject *)
  check_bool "alphabet prefilter rejects" false
    (CykD.accepts ~scratch:sc anbn_b "acb");
  check_bool "alphabet prefilter matches earley" (Earley.recognizes anbn "acb")
    (CykD.accepts ~scratch:sc anbn_b "acb")

let test_binarize_shape_and_budget () =
  let b = Binarize.of_cfg_exn anbn in
  check_bool "anbn nullable start" true (Binarize.accepts_empty b);
  check_bool "anbn has pairs" true (b.Binarize.num_pairs > 0);
  check_bool "anbn density positive" true (Binarize.density b > 0.);
  check_bool "pair count bounded by rules" true
    (b.Binarize.num_pairs <= b.Binarize.num_binary_rules);
  (* the nonterminal budget trips on split helpers *)
  (match Binarize.of_cfg ~max_nts:2 dyck_cfg with
  | Error o -> check_bool "budget reports progress" true (o.Binarize.nts_reached > 2)
  | Ok _ -> Alcotest.fail "expected a nonterminal-budget overflow");
  (* ε-variant expansion is budgeted even when the expanded rules
     deduplicate away: A → B^12 with B nullable has 2^12 variants *)
  let blowup =
    Cfg.make ~start:"A"
      ~productions:
        [ ("A", List.init 12 (fun _ -> Cfg.N "B"));
          ("B", []);
          ("B", [ Cfg.T 'b' ]) ]
  in
  (match Binarize.of_cfg ~max_rules:64 blowup with
  | Error o -> check_bool "rule budget trips" true (o.Binarize.rules_reached > 64)
  | Ok _ -> Alcotest.fail "expected a rule-budget overflow");
  (* unbudgeted, the same grammar still binarizes correctly *)
  let bb = Binarize.of_cfg_exn blowup in
  let sc = CykD.scratch () in
  List.iter
    (fun k ->
      check_bool
        (Fmt.str "blowup accepts b^%d" k)
        (k <= 12)
        (CykD.accepts ~scratch:sc bb (String.make k 'b')))
    [ 0; 1; 7; 12; 13 ]

(* --- incremental sessions -------------------------------------------------- *)

(* The session contract: after [feed s w], the chart answers exactly as a
   fresh [run_compiled] over [w] — accepts, size, and tree rendering. *)
let check_session_state comp es w ch =
  let fresh = Earley.run_compiled comp w in
  check_bool (Fmt.str "accepts %S" w) (Earley.accepts fresh)
    (Earley.accepts ch);
  check_int (Fmt.str "size %S" w) (Earley.size fresh) (Earley.size ch);
  Alcotest.(check string) (Fmt.str "text %S" w) w (Earley.session_text es);
  match (Earley.parse_tree fresh, Earley.parse_tree ch) with
  | None, None -> ()
  | Some a, Some b ->
    Alcotest.(check string)
      (Fmt.str "tree %S" w)
      (P.to_string (Earley.tree_to_ptree a))
      (P.to_string (Earley.tree_to_ptree b))
  | Some _, None -> Alcotest.fail (Fmt.str "incremental lost the tree on %S" w)
  | None, Some _ -> Alcotest.fail (Fmt.str "incremental invented a tree on %S" w)

let splice buf at del ins =
  String.sub buf 0 at ^ ins
  ^ String.sub buf (at + del) (String.length buf - at - del)

let test_earley_session_stream () =
  let comp = Earley.compile dyck_cfg in
  let es = Earley.session comp in
  let buf = ref "" in
  (* streaming accepts-as-you-go over a growing Dyck word *)
  List.iter
    (fun chunk ->
      buf := !buf ^ chunk;
      let ch = Earley.feed es !buf in
      check_session_state comp es !buf ch)
    [ "("; "()"; ")"; "(())"; ""; "()" ];
  (* append-only reuse: all previously valid sets survive *)
  let before = String.length !buf in
  ignore (Earley.feed es (!buf ^ "()"));
  check_int "append reuses every old set" (before + 1)
    (Earley.session_reused es)

let test_earley_session_edits () =
  List.iter
    (fun (cfg, script) ->
      let comp = Earley.compile cfg in
      let es = Earley.session comp in
      let buf = ref "" in
      List.iter
        (fun (at, del, ins) ->
          buf := splice !buf at del ins;
          let ch = Earley.feed es !buf in
          check_session_state comp es !buf ch)
        script)
    [ (dyck_cfg,
       [ (0, 0, "(())()"); (2, 2, ""); (1, 0, ")("); (0, 3, ""); (3, 0, "((") ]);
      (anbn, [ (0, 0, "aabb"); (2, 0, "ab"); (0, 1, ""); (4, 1, "b") ]);
      (hard, [ (0, 0, "abab"); (2, 2, "ba"); (0, 0, "ab"); (3, 1, "") ]);
      (right_rec, [ (0, 0, "aaaa"); (4, 0, "aaaa"); (2, 1, ""); (0, 7, "") ]) ]

(* A deadline abort mid-feed leaves the retained chart invalid, never
   wrong: the next feed recomputes from scratch and agrees with a fresh
   run again. *)
let test_earley_session_abort_recovers () =
  let comp = Earley.compile dyck_cfg in
  let es = Earley.session comp in
  ignore (Earley.feed es "(()())");
  (match
     Earley.feed es ~poll:(fun () -> raise Exit) "(()())()"
   with
  | _ -> Alcotest.fail "poll abort did not propagate"
  | exception Exit -> ());
  let w = "(()())()()" in
  let ch = Earley.feed es w in
  check_session_state comp es w ch

(* Random edit scripts, every step compared against a from-scratch run —
   the engine-level mirror of the service's --paranoid oracle. *)
let prop_session_differential =
  let gen =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map (fun (a, d, s) -> Fmt.str "(%d,%d,%S)" a d s) ops))
      QCheck.Gen.(
        list_size (1 -- 12)
          (triple (0 -- 20) (0 -- 6)
             (string_size ~gen:(oneofl [ '('; ')'; 'a'; 'b' ]) (0 -- 6))))
  in
  QCheck.Test.make ~name:"session edits agree with from-scratch runs" ~count:60
    gen (fun script ->
      List.for_all
        (fun cfg ->
          let comp = Earley.compile cfg in
          let es = Earley.session comp in
          let buf = ref "" in
          List.for_all
            (fun (at, del, ins) ->
              let n = String.length !buf in
              let at = min at n in
              let del = min del (n - at) in
              buf := splice !buf at del ins;
              let ch = Earley.feed es !buf in
              let fresh = Earley.run_compiled comp !buf in
              Bool.equal (Earley.accepts fresh) (Earley.accepts ch)
              && Earley.size fresh = Earley.size ch)
            script)
        [ dyck_cfg; hard; right_rec ])

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dyck_roundtrip; prop_expr_roundtrip; prop_earley_cyk_agree;
      prop_slr_earley_agree; prop_leo_differential;
      prop_cyk_dense_differential; prop_session_differential ]

let suite =
  [ ("cfg make/validate", `Quick, test_cfg_make);
    ("cfg as inductive linear type", `Quick, test_cfg_to_grammar);
    ("earley basic", `Quick, test_earley_basic);
    ("earley nullable+left-recursive", `Quick, test_earley_hard);
    ("earley parse tree", `Quick, test_earley_parse_tree);
    ("earley parse on hard grammar", `Quick, test_earley_parse_hard);
    ("earley chart size", `Quick, test_earley_chart_size_grows);
    ("earley indexed vs scan completer", `Quick, test_earley_indexed_vs_scan);
    ("earley leo right recursion", `Quick, test_earley_leo_right_recursion);
    ("earley shared chart", `Quick, test_earley_shared_chart);
    ("earley session streaming", `Quick, test_earley_session_stream);
    ("earley session edits", `Quick, test_earley_session_edits);
    ("earley session abort recovery", `Quick, test_earley_session_abort_recovers);
    ("first/last sets", `Quick, test_first_last);
    ("cyk matches earley", `Quick, test_cyk_matches_earley);
    ("cyk empty string", `Quick, test_cyk_empty);
    ("cyk scratch reuse", `Quick, test_cyk_scratch_reuse);
    ("first/follow", `Quick, test_first_follow);
    ("ll1 table construction", `Quick, test_ll1_build);
    ("ll1 parser", `Quick, test_ll1_parse);
    ("mu-regex semantics", `Quick, test_mu_regex_basic);
    ("mu-regex star", `Quick, test_mu_regex_star_is_mu);
    ("mu-regex to cfg", `Quick, test_mu_to_cfg);
    ("cfg to mu-regex (Leiss)", `Quick, test_cfg_to_mu);
    ("mu-regex substitution", `Quick, test_mu_subst);
    ("dyck language", `Quick, test_dyck_language);
    ("dyck unambiguous", `Quick, test_dyck_unambiguous);
    ("thm4.13 strong equivalence", `Quick, test_dyck_strong_equivalence);
    ("dyck verified parser", `Quick, test_dyck_parse_result);
    ("dyck vs earley", `Quick, test_dyck_vs_earley);
    ("expr language", `Quick, test_expr_language);
    ("expr sigma total+unambiguous", `Quick, test_expr_sigma_total_unambiguous);
    ("expr parse_o genuine", `Quick, test_expr_parse_o_genuine);
    ("thm4.14 verified parser", `Quick, test_expr_parse);
    ("thm4.14 weak equivalence", `Quick, test_expr_weak_equivalence);
    ("expr right association", `Quick, test_expr_right_associated);
    ("expr semantic action", `Quick, test_expr_eval);
    ("slr handles left recursion", `Quick, test_slr_accepts_left_recursion);
    ("slr parser", `Quick, test_slr_parse);
    ("slr left association", `Quick, test_slr_left_associated);
    ("slr dyck", `Quick, test_slr_dyck);
    ("random cfg differential", `Quick, test_random_cfg_differential);
    ("cyk dense blocked identity", `Quick, test_cyk_dense_blocked_identity);
    ("binarize shape and budgets", `Quick, test_binarize_shape_and_budget);
    ("random cfg earley trees", `Quick, test_random_cfg_earley_trees);
    ("random cfg mu roundtrip", `Quick, test_random_cfg_mu_roundtrip);
    ("expr unambiguity scaled", `Quick, test_expr_sigma_unambiguous_scaled);
    ("dyck unambiguity scaled", `Quick, test_dyck_unambiguous_scaled);
    ("ll1 stack automaton language", `Quick, test_ll1_automaton_language);
    ("ll1 stack automaton traces", `Quick, test_ll1_automaton_traces);
    ("ll1 stack automaton parser", `Quick, test_ll1_automaton_parser);
    ("ll1 stack encoding", `Quick, test_ll1_automaton_stack_encoding) ]
  @ qcheck_tests
