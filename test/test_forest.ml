(* Tests for the shared packed parse forest engine ({!Forest}): agreement
   with the enumeration engines on counts and membership, exact Catalan
   ambiguity at sizes where materializing the parse list is infeasible,
   saturating counts, and on-demand unpacking. *)

module G = Lambekd_grammar.Grammar
module P = Lambekd_grammar.Ptree
module E = Lambekd_grammar.Enum
module F = Lambekd_grammar.Forest
module Dyck = Lambekd_cfg.Dyck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* S → SS | a: the parses of a^n are the binary trees with n leaves,
   counted by Catalan(n-1). *)
let ss = G.fix "S" (fun self -> G.alt2 (G.seq self self) (G.chr 'a'))

let catalan n =
  let c = Array.make (n + 1) 0 in
  c.(0) <- 1;
  for i = 1 to n do
    for j = 0 to i - 1 do
      c.(i) <- c.(i) + (c.(j) * c.(i - 1 - j))
    done
  done;
  c.(n)

let test_count_matches_enum () =
  for n = 1 to 8 do
    let s = String.make n 'a' in
    check_int (Fmt.str "count a^%d" n) (E.count ss s) (F.count_string ss s);
    check_int
      (Fmt.str "count_fast a^%d" n)
      (E.count_fast ss s) (F.count_string ss s)
  done;
  check_int "empty input" 0 (F.count_string ss "");
  check_int "wrong letter" 0 (F.count_string ss "ab")

let test_catalan_exact () =
  for n = 1 to 14 do
    let s = String.make n 'a' in
    check_int (Fmt.str "catalan a^%d" n) (catalan (n - 1)) (F.count_string ss s)
  done;
  (* the acceptance-scale instance: Catalan(23) parse trees, far beyond
     anything a materialized list could hold *)
  check_bool "a^24 exact count" true
    (F.count_string ss (String.make 24 'a') = 343_059_613_650)

let test_saturation () =
  (* Catalan(79) ≫ max_int: the sweep must saturate, not overflow *)
  let c = F.count_string ss (String.make 80 'a') in
  check_bool "saturated" true (F.is_saturated c);
  check_bool "small count not saturated" false
    (F.is_saturated (F.count_string ss "aaa"))

let test_engines_agree_dyck () =
  let inputs =
    [ ""; "()"; "(())"; "()()()"; "(()())(())"; ")("; "(("; "())("; "()(" ]
  in
  List.iter
    (fun w ->
      let f = F.accepts_string Dyck.grammar w in
      check_bool (Fmt.str "worklist %S" w) f (E.accepts Dyck.grammar w);
      check_bool
        (Fmt.str "fixpoint %S" w)
        f
        (E.accepts_fixpoint Dyck.grammar w))
    inputs

let test_random_differential () =
  let st = Random.State.make [| 0x5eed; 2 |] in
  for _ = 1 to 200 do
    let len = Random.State.int st 13 in
    let w =
      String.init len (fun _ -> if Random.State.bool st then '(' else ')')
    in
    let f = F.accepts_string Dyck.grammar w in
    check_bool (Fmt.str "worklist %S" w) f (E.accepts Dyck.grammar w);
    check_bool
      (Fmt.str "fixpoint %S" w)
      f
      (E.accepts_fixpoint Dyck.grammar w);
    (* Dyck is unambiguous: the materialized parse list has 0 or 1 tree *)
    check_int
      (Fmt.str "parses %S" w)
      (if f then 1 else 0)
      (List.length (E.parses Dyck.grammar w))
  done

let test_enumerate_bounded () =
  let f = F.build ss (String.make 10 'a') in
  let trees = List.of_seq (F.enumerate ~max_trees:7 f) in
  check_int "bounded" 7 (List.length trees);
  List.iter
    (fun t ->
      Alcotest.(check string) "yield" (String.make 10 'a') (P.yield t))
    trees;
  check_int "distinct" 7 (List.length (List.sort_uniq compare trees));
  check_int "full enumeration" (catalan 4)
    (List.length (List.of_seq (F.enumerate (F.build ss "aaaaa"))))

let test_first_parse () =
  (match F.first_parse (F.build Dyck.grammar "(())") with
  | Some t -> Alcotest.(check string) "yield" "(())" (P.yield t)
  | None -> Alcotest.fail "expected a parse");
  check_bool "none on reject" true
    (F.first_parse (F.build Dyck.grammar "(") = None)

let test_build_span () =
  check_bool "inner span accepted" true
    (F.accepts (F.build_span Dyck.grammar "))()((" 2 4));
  check_bool "outer span rejected" false
    (F.accepts (F.build_span Dyck.grammar "))()((" 0 2))

let test_forest_stats () =
  let f = F.build ss (String.make 8 'a') in
  check_bool "has nodes" true (F.nodes f > 0);
  check_bool "has genuinely packed nodes" true (F.packed f > 0);
  (* DAG size is polynomial even though the count is Catalan-sized *)
  check_bool "polynomial size" true (F.nodes f <= 8 * 8 * 4)

let suite =
  [ ("forest count = enum count", `Quick, test_count_matches_enum);
    ("catalan ambiguity exact", `Quick, test_catalan_exact);
    ("count saturates", `Quick, test_saturation);
    ("three engines agree on dyck", `Quick, test_engines_agree_dyck);
    ("random differential dyck", `Quick, test_random_differential);
    ("bounded enumeration", `Quick, test_enumerate_bounded);
    ("first parse", `Quick, test_first_parse);
    ("span builds", `Quick, test_build_span);
    ("forest statistics", `Quick, test_forest_stats) ]
