(* Tests for the hardened serving front end: bounded line reading,
   ordered crash-safe stream output (including a peer that vanishes
   mid-stream), concurrent TCP serving, 1000-connection churn without
   descriptor leaks, overload shedding, and graceful drain. *)

module Sv = Lambekd_service
module Server = Sv.Server
module Scheduler = Sv.Scheduler
module Registry = Sv.Registry
module Protocol = Sv.Protocol
module Session = Sv.Session

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test writes to peers that may be gone; EPIPE must be an error
   code, not a process death *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* --- bounded line reading -------------------------------------------------- *)

(* Feed [payload] through a pipe in deliberately awkward 37-byte chunks
   so lines straddle refill boundaries. *)
let with_pipe_reader payload f =
  let r, w = Unix.pipe () in
  let writer =
    Thread.create
      (fun () ->
        let n = String.length payload in
        let off = ref 0 in
        while !off < n do
          let k = min 37 (n - !off) in
          off := !off + Unix.write_substring w payload !off k
        done;
        Unix.close w)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join writer;
      Unix.close r)
    (fun () -> f (Server.reader r))

let test_read_line_basic () =
  with_pipe_reader "a\nbb\n\nccc no newline" @@ fun rdr ->
  let next () = Server.read_line rdr ~max_bytes:1024 in
  check_bool "line a" true (next () = Server.Line "a");
  check_bool "line bb" true (next () = Server.Line "bb");
  check_bool "empty line" true (next () = Server.Line "");
  check_bool "final unterminated chunk is a line" true
    (next () = Server.Line "ccc no newline");
  check_bool "eof" true (next () = Server.Eof);
  check_bool "eof is sticky" true (next () = Server.Eof)

let test_read_line_oversized () =
  let payload =
    String.make 50 'x' ^ "\n" ^ "short\n" ^ String.make 10 'y' ^ "\n"
    ^ String.make 20 'z'
  in
  with_pipe_reader payload @@ fun rdr ->
  let next () = Server.read_line rdr ~max_bytes:10 in
  (match next () with
  | Server.Oversized n -> check_int "bytes counted, not buffered" 50 n
  | _ -> Alcotest.fail "expected oversized");
  check_bool "next line unaffected" true (next () = Server.Line "short");
  check_bool "exactly max_bytes passes" true
    (next () = Server.Line (String.make 10 'y'));
  (match next () with
  | Server.Oversized n -> check_int "oversized at eof" 20 n
  | _ -> Alcotest.fail "expected trailing oversized");
  check_bool "eof after" true (next () = Server.Eof)

let test_read_line_long_valid () =
  (* a line far larger than the reader's internal chunk still reads *)
  let big = String.make 40_000 'q' in
  with_pipe_reader (big ^ "\nend\n") @@ fun rdr ->
  check_bool "40k line reads" true
    (Server.read_line rdr ~max_bytes:65536 = Server.Line big);
  check_bool "next" true (Server.read_line rdr ~max_bytes:65536 = Server.Line "end")

(* --- stream serving -------------------------------------------------------- *)

let with_sched f =
  let reg = Registry.create () in
  let sched = Scheduler.create ~domains:2 ~queue_cap:32 ~registry:reg () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) (fun () -> f sched)

let read_all_lines fd =
  let rdr = Server.reader fd in
  let rec go acc =
    match Server.read_line rdr ~max_bytes:(1 lsl 20) with
    | Server.Line l -> go (l :: acc)
    | Server.Oversized _ -> go acc
    | Server.Eof -> List.rev acc
  in
  go []

let test_serve_stream_ordered () =
  with_sched @@ fun sched ->
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let input =
    String.concat "\n"
      (List.init 20 (fun i ->
           Fmt.str {|{"id":"r%d","grammar":"dyck","input":"%s"}|} i
             (String.concat "" (List.init (i mod 5) (fun _ -> "()")))))
    ^ "\nnot json\n\n"
  in
  write_all in_w input;
  Unix.close in_w;
  let status =
    Server.serve_stream ~max_line_bytes:1024 ~sched ~times:false in_r out_w
  in
  Unix.close out_w;
  let lines = read_all_lines out_r in
  Unix.close out_r;
  Unix.close in_r;
  check_bool "bad line makes the stream malformed" true (status = `Malformed);
  check_int "one response per non-blank line" 21 (List.length lines);
  (* responses come back in request order whatever the pool did *)
  List.iteri
    (fun i l ->
      if i < 20 then
        check_bool (Fmt.str "response %d in order" i) true
          (String.length l > 7 && String.sub l 0 7 = Fmt.str {|{"id":"|}
          && String.equal (Fmt.str {|{"id":"r%d"|} i)
               (String.sub l 0 (String.length (Fmt.str {|{"id":"r%d"|} i)))))
    lines

let test_serve_stream_peer_vanishes () =
  (* the reading peer closes before any response is written: every write
     EPIPEs, the stream goes dead, and serve_stream still returns *)
  with_sched @@ fun sched ->
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  Unix.close out_r;
  write_all in_w
    (String.concat ""
       (List.init 10 (fun i ->
            Fmt.str {|{"id":"v%d","grammar":"dyck","input":"()"}|} i ^ "\n")));
  Unix.close in_w;
  (match
     Server.serve_stream ~max_line_bytes:1024 ~sched ~times:false in_r out_w
   with
  | (_ : Server.status) -> ()
  | exception e ->
    Alcotest.failf "serve_stream raised on dead peer: %s" (Printexc.to_string e));
  Unix.close out_w;
  Unix.close in_r

(* --- the TCP front end ------------------------------------------------------ *)

type running = {
  t : Server.tcp;
  sched : Scheduler.t;
  thread : Thread.t;
  sessions : Session.t option;
}

let start_server ?max_conns ?max_line_bytes ?(use_sessions = false) () =
  let reg = Registry.create () in
  let sched = Scheduler.create ~domains:2 ~queue_cap:32 ~registry:reg () in
  (* a shared table (same registry as the scheduler) lets sessions span
     connections, as lambekd serve wires it *)
  let sessions =
    if use_sessions then Some (Session.create ~registry:reg ()) else None
  in
  match Server.tcp_create ~port:0 () with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let thread =
      Thread.create
        (fun () ->
          Server.run ?max_conns ?max_line_bytes ?sessions ~sched ~times:false t)
        ()
    in
    { t; sched; thread; sessions }

let stop_server r =
  Server.stop r.t;
  Thread.join r.thread;
  Option.iter Session.close_all r.sessions;
  Scheduler.shutdown r.sched

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let recv_line fd =
  let rdr = Server.reader fd in
  match Server.read_line rdr ~max_bytes:(1 lsl 20) with
  | Server.Line l -> Some l
  | Server.Oversized _ | Server.Eof -> None

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_tcp_churn () =
  let r = start_server () in
  Fun.protect ~finally:(fun () -> stop_server r) @@ fun () ->
  let port = Server.port r.t in
  (* settle: first connection compiles the grammar into the registry *)
  let warm = connect port in
  write_all warm {|{"id":"w","grammar":"dyck","input":"()"}|};
  write_all warm "\n";
  ignore (recv_line warm);
  Unix.close warm;
  let before = open_fds () in
  for i = 1 to 1000 do
    let fd = connect port in
    write_all fd (Fmt.str {|{"id":"c%d","grammar":"dyck","input":"()"}|} i ^ "\n");
    (match recv_line fd with
    | Some l ->
      check_bool (Fmt.str "conn %d answered" i) true
        (String.length l > 0 && l.[0] = '{')
    | None -> Alcotest.failf "conn %d got no response" i);
    Unix.close fd
  done;
  (* descriptor-leak gate: churn must not grow the fd table (slack for
     the handler threads of the last few connections still tearing down) *)
  let rec settle tries =
    let now = open_fds () in
    if now <= before + 8 || tries = 0 then now
    else begin
      Thread.yield ();
      Unix.sleepf 0.05;
      settle (tries - 1)
    end
  in
  let after = settle 40 in
  check_bool
    (Fmt.str "no fd leak across 1000 connections (%d -> %d)" before after)
    true
    (after <= before + 8);
  check_bool "all connections counted" true (Server.connections r.t >= 1001)

let test_tcp_shed () =
  let r = start_server ~max_conns:1 () in
  Fun.protect ~finally:(fun () -> stop_server r) @@ fun () ->
  let port = Server.port r.t in
  let c1 = connect port in
  write_all c1 {|{"id":"h","grammar":"dyck","input":"()"}|};
  write_all c1 "\n";
  (* reading c1's response guarantees the server registered it as live *)
  check_bool "held connection answered" true (recv_line c1 <> None);
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let c2 = connect port in
  (match recv_line c2 with
  | Some l ->
    check_bool "shed response is overloaded" true
      (contains ~sub:"overloaded" l)
  | None -> Alcotest.fail "shed connection got no response");
  (* and the shed connection is closed right after *)
  check_bool "shed connection closed" true (recv_line c2 = None);
  Unix.close c2;
  Unix.close c1

let test_tcp_oversized_line () =
  let r = start_server ~max_line_bytes:64 () in
  Fun.protect ~finally:(fun () -> stop_server r) @@ fun () ->
  let fd = connect (Server.port r.t) in
  write_all fd (String.make 500 'x');
  write_all fd "\n";
  write_all fd {|{"id":"ok","grammar":"dyck","input":"()"}|};
  write_all fd "\n";
  let rdr = Server.reader fd in
  (match Server.read_line rdr ~max_bytes:4096 with
  | Server.Line l ->
    check_string "oversized line answered with bad_request"
      {|{"ok":false,"error":"bad_request","message":"line exceeds 64-byte limit"}|}
      l
  | _ -> Alcotest.fail "no response to oversized line");
  (match Server.read_line rdr ~max_bytes:4096 with
  | Server.Line l ->
    check_bool "stream continues after oversized line" true
      (String.length l > 0 && l.[0] = '{')
  | _ -> Alcotest.fail "stream died after oversized line");
  Unix.close fd

let test_tcp_abrupt_disconnect () =
  (* a client that sends work and slams the connection shut must not
     poison the server for the next client *)
  let r = start_server () in
  Fun.protect ~finally:(fun () -> stop_server r) @@ fun () ->
  let port = Server.port r.t in
  for _ = 1 to 20 do
    let fd = connect port in
    write_all fd
      (String.concat ""
         (List.init 5 (fun i ->
              Fmt.str {|{"id":"a%d","grammar":"expr","input":"n+n","query":"parse"}|}
                i
              ^ "\n")));
    (* close without reading a single response *)
    Unix.close fd
  done;
  let fd = connect port in
  write_all fd {|{"id":"after","grammar":"dyck","input":"()"}|};
  write_all fd "\n";
  check_bool "server healthy after abrupt disconnects" true
    (recv_line fd <> None);
  Unix.close fd

let test_tcp_graceful_drain () =
  let r = start_server () in
  let port = Server.port r.t in
  let fd = connect port in
  write_all fd {|{"id":"d","grammar":"dyck","input":"(())"}|};
  write_all fd "\n";
  check_bool "response before drain" true (recv_line fd <> None);
  (* connection still open when the stop lands: drain must half-close
     it, flush, and let run return *)
  Server.stop r.t;
  Thread.join r.thread;
  check_bool "drained connection sees EOF" true (recv_line fd = None);
  Unix.close fd;
  Scheduler.shutdown r.sched;
  (* the listener is gone: connecting again fails *)
  check_bool "listener closed" true
    (match connect port with
    | fd ->
      Unix.close fd;
      false
    | exception Unix.Unix_error _ -> true)

(* --- the operations plane on the wire ------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_serve_stream_admin_and_trace () =
  with_sched @@ fun sched ->
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  write_all in_w
    (String.concat "\n"
       [ {|{"id":"h1","op":"health"}|};
         {|{"id":"m1","op":"metrics"}|};
         {|{"id":"r2","grammar":"dyck","input":"()","trace":true}|};
         {|{"id":"r3","grammar":"expr","input":"n"}|} ]
    ^ "\n");
  Unix.close in_w;
  let status =
    Server.serve_stream ~max_line_bytes:1024 ~sched ~times:false in_r out_w
  in
  Unix.close out_w;
  let lines = read_all_lines out_r in
  Unix.close out_r;
  Unix.close in_r;
  check_bool "clean stream" true (status = `Clean);
  match lines with
  | [ h; m; traced; plain ] ->
    (* admin lines answered inline; normalized, so exact bytes *)
    check_string "health inline" {|{"id":"h1","ok":true,"status":"ready"}|} h;
    check_string "metrics inline" {|{"id":"m1","ok":true,"op":"metrics"}|} m;
    (* trace ids are t<seq> over answered lines: the request is line 2 *)
    check_string "traced response echoes its trace"
      {|{"id":"r2","ok":true,"verdict":"accept","engine":"ll1","artifact":"miss","result":"miss","trace":{"id":"t2","stages":["received","dequeued","engine_start","engine_end","written"]}}|}
      traced;
    check_bool "untraced response carries no trace" true
      (not (contains plain {|"trace"|}))
  | _ -> Alcotest.failf "expected 4 responses, got %d" (List.length lines)

let test_serve_stream_slow_log () =
  with_sched @@ fun sched ->
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let mu = Mutex.create () in
  let slow_lines = ref [] in
  let slow =
    { Server.threshold_ns = 0.;
      emit =
        (fun l -> Mutex.protect mu (fun () -> slow_lines := l :: !slow_lines))
    }
  in
  write_all in_w
    ({|{"id":"s0","grammar":"dyck","input":"()"}|} ^ "\n"
    ^ {|{"id":"s1","grammar":"dyck","input":"(())","trace":true}|} ^ "\n");
  Unix.close in_w;
  ignore
    (Server.serve_stream ~max_line_bytes:1024 ~slow ~sched ~times:false in_r
       out_w
      : Server.status);
  Unix.close out_w;
  let lines = read_all_lines out_r in
  Unix.close out_r;
  Unix.close in_r;
  check_int "responses" 2 (List.length lines);
  (* the slow log gives every request an internal trace, but only the
     client-requested one is echoed on the wire *)
  check_bool "internal trace never echoed" true
    (not (contains (List.nth lines 0) {|"trace"|}));
  check_bool "requested trace still echoed" true
    (contains (List.nth lines 1) {|"trace"|});
  (* threshold 0: every request is over it *)
  check_int "one slow record per request" 2 (List.length !slow_lines);
  List.iter
    (fun l ->
      match Sv.Json.parse l with
      | Error e -> Alcotest.failf "unparseable slow record %s: %s" l e
      | Ok j ->
        check_bool "ev:slow" true
          (Option.bind (Sv.Json.mem "ev" j) Sv.Json.str = Some "slow");
        check_bool "has total_ns" true (Sv.Json.mem "total_ns" j <> None);
        check_bool "has trace id" true (Sv.Json.mem "trace" j <> None))
    !slow_lines

let http_get port path =
  let fd = connect port in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  write_all fd (Fmt.str "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" path);
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let test_metrics_endpoint () =
  let module M = Lambekd_telemetry.Metrics in
  M.reset ();
  M.enable ();
  Fun.protect
    ~finally:(fun () ->
      M.disable ();
      M.reset ())
  @@ fun () ->
  let h = M.histogram "test_endpoint_ns" in
  M.observe h 100.;
  M.gauge "test_endpoint_gauge" (fun () -> 7.);
  let health () =
    Protocol.health_response ~draining:false
      ~extra:[ ("queue_depth", Sv.Json.Num 0.) ]
      ()
    ^ "\n"
  in
  match Server.metrics_tcp ~port:0 ~expose:M.expose ~health () with
  | Error e -> Alcotest.fail e
  | Ok ep ->
    Fun.protect ~finally:(fun () -> Server.metrics_stop ep) @@ fun () ->
    let port = Server.metrics_port ep in
    let m = http_get port "/metrics" in
    check_bool "scrape is 200" true (contains m "200 OK");
    check_bool "prometheus content type" true
      (contains m "text/plain; version=0.0.4");
    check_bool "histogram family served" true
      (contains m "# TYPE lambekd_test_endpoint_ns histogram");
    check_bool "gauge served" true (contains m "lambekd_test_endpoint_gauge 7");
    let hh = http_get port "/health" in
    check_bool "health is 200" true (contains hh "200 OK");
    check_bool "health content type" true (contains hh "application/json");
    check_bool "health status" true (contains hh {|"status":"ready"|})

(* --- sessions on the wire --------------------------------------------------- *)

let test_serve_stream_sessions () =
  with_sched @@ fun sched ->
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  write_all in_w
    (String.concat "\n"
       [ {|{"id":"o","op":"session_open","grammar":"dyck"}|};
         {|{"id":"a1","op":"append","session":"s0","chunk":"(("}|};
         {|{"id":"e1","op":"edit","session":"s0","at":2,"del":0,"ins":"))"}|};
         {|{"id":"q1","op":"query","session":"s0","query":"parse"}|};
         {|{"id":"t1","op":"append","session":"s0","chunk":"x","timeout_ms":0}|};
         {|{"id":"u1","op":"append","session":"nope","chunk":"x"}|};
         {|{"id":"c1","op":"session_close","session":"s0"}|};
         {|{"id":"z1","op":"append","session":"s0","chunk":"x"}|} ]
    ^ "\n");
  Unix.close in_w;
  let status =
    Server.serve_stream ~max_line_bytes:4096 ~sched ~times:false in_r out_w
  in
  Unix.close out_w;
  let lines = read_all_lines out_r in
  Unix.close out_r;
  Unix.close in_r;
  (* the unknown-session rejections are the bad-line class, the zero
     budget the timeout class: malformed wins for the exit code *)
  check_bool "rejections mark the stream malformed" true (status = `Malformed);
  match lines with
  | [ o; a1; e1; q1; t1; u1; c1; z1 ] ->
    check_string "open allocates s0"
      {|{"id":"o","ok":true,"verdict":"session_opened","session":"s0","engine":"session","artifact":"miss"}|}
      o;
    check_string "append answers whole-buffer acceptance"
      {|{"id":"a1","ok":true,"verdict":"reject","len":2,"engine":"session"}|}
      a1;
    check_string "edit splices and re-answers"
      {|{"id":"e1","ok":true,"verdict":"accept","len":4,"engine":"session"}|}
      e1;
    check_bool "parse query carries a tree" true
      (contains q1 {|"verdict":"accept"|} && contains q1 {|"tree":"|});
    (* a zero budget is a deterministic timeout that mutates nothing *)
    check_string "zero budget times out on the wire"
      {|{"id":"t1","ok":false,"error":"timeout","after_ms":0}|} t1;
    check_string "unknown session rejected"
      {|{"id":"u1","ok":false,"error":"bad_request","message":"unknown session \"nope\""}|}
      u1;
    check_string "close confirms"
      {|{"id":"c1","ok":true,"verdict":"session_closed","session":"s0","engine":"session"}|}
      c1;
    check_string "closed name is unbound"
      {|{"id":"z1","ok":false,"error":"bad_request","message":"unknown session \"s0\""}|}
      z1
  | _ -> Alcotest.failf "expected 8 responses, got %d" (List.length lines)

let test_tcp_sessions_span_connections () =
  let r = start_server ~use_sessions:true () in
  Fun.protect ~finally:(fun () -> stop_server r) @@ fun () ->
  let port = Server.port r.t in
  (* connection 1 opens and feeds the session *)
  let c1 = connect port in
  write_all c1
    ({|{"id":"o","op":"session_open","grammar":"dyck"}|} ^ "\n"
    ^ {|{"id":"a","op":"append","session":"s0","chunk":"(()"}|} ^ "\n");
  (match recv_line c1 with
  | Some l -> check_bool "opened on conn 1" true (contains l {|"session":"s0"|})
  | None -> Alcotest.fail "no open response");
  Unix.close c1;
  (* connection 2 picks the same session up: the table is shared *)
  let c2 = connect port in
  write_all c2 ({|{"id":"b","op":"append","session":"s0","chunk":")"}|} ^ "\n");
  (match recv_line c2 with
  | Some l ->
    check_bool "session survives across connections" true
      (contains l {|"verdict":"accept"|} && contains l {|"len":4|})
  | None -> Alcotest.fail "no response on conn 2");
  Unix.close c2;
  match r.sessions with
  | Some tab -> check_int "one live session at shutdown" 1 (Session.live tab)
  | None -> Alcotest.fail "server had no table"

let test_session_churn_no_fd_leak () =
  (* stream-private tables: every serve_stream call must release all
     session state (scratch bundles back to the pool, no descriptors) *)
  with_sched @@ fun sched ->
  let churn () =
    let in_r, in_w = Unix.pipe () in
    let out_r, out_w = Unix.pipe () in
    let writer =
      Thread.create
        (fun () ->
          for i = 1 to 250 do
            write_all in_w
              (Fmt.str {|{"id":"o%d","op":"session_open","grammar":"dyck"}|} i
              ^ "\n"
              ^ Fmt.str {|{"id":"a%d","op":"append","session":"s%d","chunk":"()"}|}
                  i (i - 1)
              ^ "\n"
              ^ Fmt.str {|{"id":"c%d","op":"session_close","session":"s%d"}|} i
                  (i - 1)
              ^ "\n")
          done;
          Unix.close in_w)
        ()
    in
    let answered = ref 0 in
    let drainer =
      Thread.create (fun () -> answered := List.length (read_all_lines out_r)) ()
    in
    ignore
      (Server.serve_stream ~max_line_bytes:4096 ~sched ~times:false in_r out_w
        : Server.status);
    Unix.close out_w;
    Thread.join writer;
    Thread.join drainer;
    Unix.close out_r;
    Unix.close in_r;
    check_int "every session line answered" 750 !answered
  in
  churn ();
  let before = open_fds () in
  for _ = 1 to 4 do churn () done;
  let rec settle tries =
    let now = open_fds () in
    if now <= before + 4 || tries = 0 then now
    else begin
      Thread.yield ();
      Unix.sleepf 0.05;
      settle (tries - 1)
    end
  in
  let after = settle 40 in
  check_bool
    (Fmt.str "no fd growth across 1000 session opens (%d -> %d)" before after)
    true
    (after <= before + 4)

let suite =
  [ Alcotest.test_case "read_line: chunk-straddling lines" `Quick
      test_read_line_basic;
    Alcotest.test_case "read_line: oversized consumed, not buffered" `Quick
      test_read_line_oversized;
    Alcotest.test_case "read_line: long valid line" `Quick
      test_read_line_long_valid;
    Alcotest.test_case "serve_stream: ordered responses, malformed status"
      `Quick test_serve_stream_ordered;
    Alcotest.test_case "serve_stream: survives a vanished peer" `Quick
      test_serve_stream_peer_vanishes;
    Alcotest.test_case "tcp: 1000-connection churn, no fd leak" `Quick
      test_tcp_churn;
    Alcotest.test_case "tcp: sheds beyond max-conns" `Quick test_tcp_shed;
    Alcotest.test_case "tcp: oversized line answered and survived" `Quick
      test_tcp_oversized_line;
    Alcotest.test_case "tcp: abrupt disconnects do not poison the server"
      `Quick test_tcp_abrupt_disconnect;
    Alcotest.test_case "tcp: graceful drain flushes and exits" `Quick
      test_tcp_graceful_drain;
    Alcotest.test_case "serve_stream: admin ops inline, traces echoed" `Quick
      test_serve_stream_admin_and_trace;
    Alcotest.test_case "serve_stream: slow-request log" `Quick
      test_serve_stream_slow_log;
    Alcotest.test_case "metrics endpoint: /metrics and /health over HTTP"
      `Quick test_metrics_endpoint;
    Alcotest.test_case "serve_stream: session conversation on the wire" `Quick
      test_serve_stream_sessions;
    Alcotest.test_case "tcp: shared table spans connections" `Quick
      test_tcp_sessions_span_connections;
    Alcotest.test_case "serve_stream: 1000-session churn, no fd leak" `Quick
      test_session_churn_no_fd_leak ]
