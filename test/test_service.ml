(* Tests for the service layer: LRU, JSON, protocol decoding, the grammar
   registry (including a random differential against fresh compilation),
   request execution (engine policy, deadlines, result cache), and the
   multi-domain scheduler (shedding, and a stress test asserting parallel
   output is byte-identical to serial). *)

module Sv = Lambekd_service
module Lru = Sv.Lru
module Json = Sv.Json
module Protocol = Sv.Protocol
module Registry = Sv.Registry
module Exec = Sv.Exec
module Scheduler = Sv.Scheduler
module Builtin = Sv.Builtin
module Cfg = Lambekd_cfg.Cfg
module Ff = Lambekd_cfg.First_follow
module Charsets = Lambekd_grammar.Charsets

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- lru ---------------------------------------------------------------- *)

let test_lru_basic () =
  let c = Lru.create ~cap:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check_bool "find a" true (Lru.find c "a" = Some 1);
  (* a is now most recent; inserting c evicts b *)
  Lru.put c "c" 3;
  check_int "size stays at cap" 2 (Lru.size c);
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a survives" true (Lru.find c "a" = Some 1);
  check_bool "c present" true (Lru.find c "c" = Some 3);
  check_int "one eviction" 1 (Lru.evictions c)

let test_lru_replace () =
  let c = Lru.create ~cap:2 in
  Lru.put c "a" 1;
  Lru.put c "a" 10;
  check_int "replace does not grow" 1 (Lru.size c);
  check_bool "replaced value" true (Lru.find c "a" = Some 10);
  check_int "replace is not an eviction" 0 (Lru.evictions c)

let test_lru_disabled () =
  let c = Lru.create ~cap:0 in
  Lru.put c "a" 1;
  check_bool "cap 0 never stores" true (Lru.find c "a" = None);
  check_int "drop counted as eviction" 1 (Lru.evictions c)

(* --- json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [ {|null|}; {|true|}; {|[1,2,3]|}; {|{"a":1,"b":[true,null]}|};
      {|"he\"llo\n"|}; {|{"nested":{"x":[{"y":"z"}]}}|} ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
        let printed = Json.to_string v in
        match Json.parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v' -> check_bool ("roundtrip " ^ s) true (v = v')))
    cases

let test_json_errors () =
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true (Result.is_error (Json.parse s)))
    [ ""; "{"; "[1,"; {|{"a"}|}; "tru"; {|"unterminated|}; "1 2"; "{} []" ]

let test_json_escapes () =
  (match Json.parse {|"A\t"|} with
  | Ok (Json.Str s) -> check_string "unicode escape" "A\t" s
  | _ -> Alcotest.fail "escape parse");
  check_string "control chars escaped" {|"\u0001"|}
    (Json.to_string (Json.Str "\001"));
  check_string "integral floats print as ints" {|{"n":42}|}
    (Json.to_string (Json.Obj [ ("n", Json.Num 42.) ]))

(* Encode one code point as UTF-8 (the test-side mirror of the encoder
   the JSON decoder uses, so properties do not test it against itself). *)
let utf8_of_cp cp =
  let b = Buffer.create 4 in
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end;
  Buffer.contents b

let test_json_surrogates () =
  (match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
    check_string "pair decodes to 4-byte UTF-8" (utf8_of_cp 0x1F600) s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.fail e);
  (match Json.parse {|"A\ud834\udd1e!"|} with
  | Ok (Json.Str s) ->
    check_string "pair embeds in surrounding text" ("A" ^ utf8_of_cp 0x1D11E ^ "!") s
  | _ -> Alcotest.fail "mixed pair");
  (* raw astral bytes pass through the string lexer untouched *)
  (match Json.parse ("\"" ^ utf8_of_cp 0x1F680 ^ "\"") with
  | Ok (Json.Str s) -> check_string "raw astral" (utf8_of_cp 0x1F680) s
  | _ -> Alcotest.fail "raw astral");
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true (Result.is_error (Json.parse s)))
    [ {|"\ud800"|};           (* lone high surrogate at end *)
      {|"\ud83dx"|};          (* high surrogate, then a plain char *)
      {|"\ud83d\u0041"|};     (* high surrogate, then a non-low escape *)
      {|"\udc00"|};           (* lone low surrogate *)
      {|"\ude00()"|} ]

let arbitrary_unicode_string =
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(
      let cp =
        (* all four UTF-8 widths, surrogate range excluded *)
        frequency
          [ (4, int_range 1 0x7f);
            (2, int_range 0x80 0x7ff);
            (1, int_range 0x800 0xd7ff);
            (1, int_range 0xe000 0xffff);
            (2, int_range 0x10000 0x10ffff) ]
      in
      map
        (fun cps -> String.concat "" (List.map utf8_of_cp cps))
        (list_size (int_bound 24) cp))

let qcheck_json_string_roundtrip =
  QCheck.Test.make
    ~name:"json: escape/decode round-trips any UTF-8 string" ~count:300
    arbitrary_unicode_string
    (fun s ->
      match Json.parse (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | _ -> false)

(* --- protocol ----------------------------------------------------------- *)

let test_parse_request () =
  match
    Protocol.parse_request
      {|{"id":"r1","grammar":"dyck","input":"()","query":"parse","engine":"earley","timeout_ms":50}|}
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "id" true (r.Protocol.id = Some "r1");
    check_string "gname" "dyck" r.Protocol.gname;
    check_string "input" "()" r.Protocol.input;
    check_bool "query" true (r.Protocol.query = Protocol.Parse);
    check_bool "engine" true (r.Protocol.engine = Protocol.Earley);
    check_bool "timeout" true (r.Protocol.timeout_ms = Some 50.)

let test_parse_request_defaults () =
  match Protocol.parse_request {|{"grammar":"expr","input":"n"}|} with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "no id" true (r.Protocol.id = None);
    check_bool "default query" true (r.Protocol.query = Protocol.Membership);
    check_bool "default engine" true (r.Protocol.engine = Protocol.Auto);
    check_bool "no timeout" true (r.Protocol.timeout_ms = None)

let test_parse_request_inline () =
  match
    Protocol.parse_request
      {|{"grammar":{"start":"S","prods":[["S",[]],["S",["'a'","S","'b'"]]]},"input":"aabb"}|}
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_string "inline gname" "inline" r.Protocol.gname;
    let resp = Exec.run (Registry.create ()) r in
    check_bool "a^n b^n accepted" true
      (resp.Protocol.outcome = Ok (Protocol.Accepted None))

let test_parse_request_errors () =
  List.iter
    (fun line ->
      check_bool
        ("rejects " ^ line)
        true
        (Result.is_error (Protocol.parse_request line)))
    [ "not json";
      {|["grammar"]|};
      {|{"input":"x"}|};
      {|{"grammar":"nope","input":"x"}|};
      {|{"grammar":"dyck"}|};
      {|{"grammar":"dyck","input":"x","query":"frobnicate"}|};
      {|{"grammar":"dyck","input":"x","engine":"glr"}|};
      {|{"grammar":"dyck","input":"x","timeout_ms":-1}|};
      {|{"grammar":{"start":"S","prods":[["S",["T"]]]},"input":"x"}|};
      {|{"grammar":{"start":"S","prods":[["S",["''"]]]},"input":"x"}|} ]

let test_response_json () =
  let resp =
    { Protocol.rid = Some "r7";
      outcome = Ok (Protocol.Accepted None);
      engine_used = "ll1";
      artifact_cache = `Hit;
      result_cache = `Miss;
      dur_ns = 1234.5 }
  in
  check_string "with times"
    {|{"id":"r7","ok":true,"verdict":"accept","engine":"ll1","artifact":"hit","result":"miss","ns":1235}|}
    (Protocol.response_to_json resp);
  check_string "no times"
    {|{"id":"r7","ok":true,"verdict":"accept","engine":"ll1","artifact":"hit","result":"miss"}|}
    (Protocol.response_to_json ~times:false resp);
  check_string "timeout shape"
    {|{"ok":false,"error":"timeout","after_ms":5}|}
    (Protocol.response_to_json ~times:false
       { resp with
         rid = None;
         outcome = Error (Protocol.Timeout { after_ms = 5. });
         artifact_cache = `None;
         result_cache = `None })

(* --- registry ----------------------------------------------------------- *)

let test_registry_caching () =
  let reg = Registry.create () in
  let cfg = Option.get (Builtin.find "dyck") in
  let a1, m1 = Registry.get reg cfg in
  let a2, m2 = Registry.get reg cfg in
  check_bool "first is a miss" true (m1 = `Miss);
  check_bool "second is a hit" true (m2 = `Hit);
  check_bool "hit returns the same artifact" true (a1 == a2);
  check_string "digest stable" a1.Registry.digest (Registry.digest_cfg cfg)

let test_registry_digest_structural () =
  (* the same structure sent inline digests identically to the builtin *)
  let inline =
    Cfg.make ~start:"D"
      ~productions:
        [ ("D", []); ("D", [ Cfg.T '('; Cfg.N "D"; Cfg.T ')'; Cfg.N "D" ]) ]
  in
  let builtin = Option.get (Builtin.find "dyck") in
  check_string "structural digest" (Registry.digest_cfg builtin)
    (Registry.digest_cfg inline);
  check_bool "different grammar, different digest" true
    (Registry.digest_cfg builtin
    <> Registry.digest_cfg (Option.get (Builtin.find "expr")))

let test_registry_eviction () =
  let reg = Registry.create ~artifact_cap:1 ~result_cap:0 () in
  let d = Option.get (Builtin.find "dyck") in
  let e = Option.get (Builtin.find "expr") in
  ignore (Registry.get reg d);
  ignore (Registry.get reg e);
  (* dyck was evicted by expr *)
  let _, m = Registry.get reg d in
  check_bool "evicted artifact recompiles" true (m = `Miss);
  check_bool "evictions counted" true (Registry.artifact_evictions reg >= 1)

(* A small random CFG generator.  Every nonterminal gets at least one
   production by construction, so [Cfg.make] always accepts the result. *)
let random_cfg rng =
  let nts = 1 + Random.State.int rng 3 in
  let nt i = Fmt.str "N%d" i in
  let sym () =
    match Random.State.int rng 4 with
    | 0 -> Cfg.T 'a'
    | 1 -> Cfg.T 'b'
    | _ -> Cfg.N (nt (Random.State.int rng nts))
  in
  let productions =
    List.concat_map
      (fun i ->
        let prods = 1 + Random.State.int rng 2 in
        List.init prods (fun _ ->
            let len = Random.State.int rng 4 in
            (nt i, List.init len (fun _ -> sym ()))))
      (List.init nts Fun.id)
  in
  Cfg.make ~start:(nt 0) ~productions

let random_word rng =
  String.init (Random.State.int rng 6) (fun _ ->
      if Random.State.bool rng then 'a' else 'b')

let info_string cs g = Fmt.str "%a" Charsets.pp_info (Charsets.info cs g)

(* The 100-grammar differential: for random grammars, the artifact served
   from the registry cache must be indistinguishable from one compiled
   fresh — same digest, same table existence, same FIRST/FOLLOW, same
   charsets analysis, and same verdicts on random inputs. *)
let test_registry_differential () =
  let rng = Random.State.make [| 0x5e41ce |] in
  let reg = Registry.create ~artifact_cap:128 ~result_cap:0 () in
  for _ = 1 to 100 do
    let cfg = random_cfg rng in
    let fresh = Registry.compile cfg in
    (* small random space: a structurally equal grammar may have been
       drawn before, in which case the first get is already a hit *)
    let a, _ = Registry.get reg cfg in
    let cached, m2 = Registry.get reg cfg in
    check_bool "second get hits" true (m2 = `Hit);
    check_bool "cached is the compiled artifact" true (a == cached);
    check_string "digest" fresh.Registry.digest cached.Registry.digest;
    check_bool "ll1 existence" true
      (Option.is_some fresh.Registry.ll1 = Option.is_some cached.Registry.ll1);
    check_bool "slr existence" true
      (Option.is_some fresh.Registry.slr = Option.is_some cached.Registry.slr);
    List.iter
      (fun n ->
        check_bool "nullable" true
          (Ff.nullable fresh.Registry.ff n = Ff.nullable cached.Registry.ff n);
        check_bool "first" true
          (Ff.first fresh.Registry.ff n = Ff.first cached.Registry.ff n);
        check_bool "follow" true
          (Ff.follow fresh.Registry.ff n = Ff.follow cached.Registry.ff n))
      (Cfg.nonterminals cfg);
    check_string "charsets root analysis"
      (info_string fresh.Registry.cs fresh.Registry.grammar)
      (info_string cached.Registry.cs cached.Registry.grammar);
    (* verdict agreement through the cached artifact vs a cold registry *)
    for _ = 1 to 3 do
      let w = random_word rng in
      let req =
        { Protocol.id = None; cfg; gname = "random"; input = w;
          query = Protocol.Membership; engine = Protocol.Auto; leo = None;
          weights = None; kbest = None; timeout_ms = None; trace = None }
      in
      let cold = Exec.run (Registry.create ~artifact_cap:0 ~result_cap:0 ()) req in
      let warm = Exec.run reg req in
      check_bool
        (Fmt.str "verdict agreement on %S" w)
        true
        (cold.Protocol.outcome = warm.Protocol.outcome)
    done
  done

(* --- exec: engine policy, deadlines, result cache ----------------------- *)

let run_line ?(reg = Registry.create ()) line =
  match Protocol.parse_request line with
  | Error e -> Alcotest.fail e
  | Ok req -> Exec.run reg req

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_engine_policy () =
  let engine line =
    (run_line line).Protocol.engine_used
  in
  check_string "LL(1) grammar uses ll1" "ll1"
    (engine {|{"grammar":"dyck","input":"()"}|});
  check_string "left-recursive grammar falls back to slr" "slr"
    (engine {|{"grammar":"expr_lr","input":"n+n"}|});
  check_string "no table falls back to earley" "earley"
    (engine {|{"grammar":"ss","input":"aa"}|});
  check_string "count always runs the forest" "forest"
    (engine {|{"grammar":"ss","input":"aaa","query":"count"}|});
  check_string "enum pin respected" "enum"
    (engine {|{"grammar":"dyck","input":"()","engine":"enum"}|});
  check_string "cyk pin respected" "cyk"
    (engine {|{"grammar":"dyck","input":"()","engine":"cyk"}|});
  (* the Auto crossover: density(ss) = 0.5, so short membership inputs
     stay on Earley and long ones flip to the dense chart *)
  check_string "auto stays on earley below the crossover" "earley"
    (engine {|{"grammar":"ss","input":"aaaa"}|});
  check_string "auto flips to cyk past the crossover" "cyk"
    (engine
       (Fmt.str {|{"grammar":"ss","input":"%s"}|} (String.make 64 'a')));
  (* parse queries never flip: cyk is a recognizer *)
  check_string "auto keeps parse queries on earley" "earley"
    (engine
       (Fmt.str {|{"grammar":"ss","input":"%s","query":"parse"}|}
          (String.make 64 'a')))

let test_engine_pin_errors () =
  let r = run_line {|{"grammar":"ss","input":"aa","engine":"ll1"}|} in
  (match r.Protocol.outcome with
  | Error (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "pinning ll1 on a non-LL(1) grammar must fail");
  let r = run_line {|{"grammar":"ss","input":"aa","engine":"slr"}|} in
  (match r.Protocol.outcome with
  | Error (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "pinning slr on a non-SLR(1) grammar must fail");
  (* cyk is a recognizer: a parse query under the pin is a bad request *)
  let r =
    run_line {|{"grammar":"dyck","input":"()","query":"parse","engine":"cyk"}|}
  in
  match r.Protocol.outcome with
  | Error (Protocol.Bad_request msg) ->
    check_bool "error names the engine" true
      (contains ~affix:"recognizer" msg)
  | _ -> Alcotest.fail "pinning cyk on a parse query must fail"

(* The binarization budget: a registry created with a tiny cyk budget
   still answers every non-cyk query, and the cyk pin degrades to the
   same bad-request shape as an absent LL(1)/SLR(1) table. *)
let test_cyk_budget_pin_error () =
  let reg = Registry.create ~cyk_nt_budget:2 () in
  let r = run_line ~reg {|{"grammar":"dyck","input":"()","engine":"cyk"}|} in
  (match r.Protocol.outcome with
  | Error (Protocol.Bad_request msg) ->
    check_bool "error names the budget" true
      (contains ~affix:"binarization budget" msg)
  | _ -> Alcotest.fail "over-budget cyk pin must be a bad request");
  (* the same grammar still serves everything else (auto never picks an
     absent cnf) *)
  let r = run_line ~reg {|{"grammar":"dyck","input":"()"}|} in
  check_bool "auto unaffected by the missing cnf" true
    (r.Protocol.outcome = Ok (Protocol.Accepted None));
  (* and a default-budget registry serves the same pin fine *)
  let r = run_line {|{"grammar":"dyck","input":"()","engine":"cyk"}|} in
  check_bool "default budget admits dyck" true
    (r.Protocol.outcome = Ok (Protocol.Accepted None))

let test_verdicts_across_engines () =
  (* all engines agree with each other on the same inputs *)
  let reg = Registry.create () in
  List.iter
    (fun (w, expect) ->
      List.iter
        (fun eng ->
          let r =
            run_line ~reg
              (Fmt.str {|{"grammar":"dyck","input":"%s","engine":"%s"}|} w eng)
          in
          let got =
            match r.Protocol.outcome with
            | Ok (Protocol.Accepted _) -> true
            | Ok Protocol.Rejected -> false
            | _ -> Alcotest.fail "unexpected failure"
          in
          check_bool (Fmt.str "%s on %S" eng w) expect got)
        [ "auto"; "ll1"; "slr"; "earley"; "cyk"; "enum" ])
    [ ("", true); ("()", true); ("(())()", true); ("(", false);
      ("())", false) ]

let test_count_query () =
  let r = run_line {|{"grammar":"ss","input":"aaaa","query":"count"}|} in
  match r.Protocol.outcome with
  | Ok (Protocol.Count { count; saturated }) ->
    check_int "catalan(3)" 5 count;
    check_bool "not saturated" false saturated
  | _ -> Alcotest.fail "expected a count"

let test_parse_query_tree () =
  let r = run_line {|{"grammar":"expr","input":"n+n","query":"parse"}|} in
  match r.Protocol.outcome with
  | Ok (Protocol.Accepted (Some tree)) ->
    check_bool "tree is non-empty" true (String.length tree > 0)
  | _ -> Alcotest.fail "expected a parse tree"

let test_timeout () =
  (* timeout_ms = 0: the deadline has always already passed *)
  let r = run_line {|{"grammar":"dyck","input":"()","timeout_ms":0}|} in
  match r.Protocol.outcome with
  | Error (Protocol.Timeout { after_ms }) ->
    check_bool "after_ms echoes budget" true (after_ms = 0.)
  | _ -> Alcotest.fail "expected a timeout"

let test_result_cache () =
  let reg = Registry.create () in
  let line = {|{"grammar":"dyck","input":"(())"}|} in
  let r1 = run_line ~reg line in
  let r2 = run_line ~reg line in
  check_bool "first result is a miss" true (r1.Protocol.result_cache = `Miss);
  check_bool "second result is a hit" true (r2.Protocol.result_cache = `Hit);
  check_bool "same verdict" true (r1.Protocol.outcome = r2.Protocol.outcome);
  (* a disabled result cache never hits *)
  let reg0 = Registry.create ~result_cap:0 () in
  let r1 = run_line ~reg:reg0 line in
  let r2 = run_line ~reg:reg0 line in
  check_bool "cap 0 never hits" true
    (r1.Protocol.result_cache = `Miss && r2.Protocol.result_cache = `Miss)

(* --- scheduler ----------------------------------------------------------- *)

let test_scheduler_shed () =
  (* domains = 0: nothing drains, so the queue fills deterministically *)
  let reg = Registry.create () in
  let sched = Scheduler.create ~domains:0 ~queue_cap:2 ~registry:reg () in
  let req =
    match Protocol.parse_request {|{"grammar":"dyck","input":"()"}|} with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let got = ref [] in
  let submit () = Scheduler.try_submit sched req (fun r -> got := r :: !got) in
  check_bool "first enqueues" true (submit () = Ok ());
  check_bool "second enqueues" true (submit () = Ok ());
  (match submit () with
  | Error retry -> check_bool "retry hint positive" true (retry > 0)
  | Ok () -> Alcotest.fail "queue over capacity");
  check_bool "drain one" true (Scheduler.drain_one sched);
  check_bool "space again" true (submit () = Ok ());
  while Scheduler.drain_one sched do () done;
  check_int "all accepted jobs answered" 3 (List.length !got);
  Scheduler.shutdown sched

let mixed_requests () =
  List.filter_map
    (fun line ->
      match Protocol.parse_request line with
      | Ok r -> Some r
      | Error e -> Alcotest.fail e)
    (List.concat
       (List.init 25 (fun i ->
            [ Fmt.str
                {|{"id":"d%d","grammar":"dyck","input":"%s"}|}
                i
                (String.concat "" (List.init (i mod 7) (fun _ -> "()")));
              Fmt.str
                {|{"id":"e%d","grammar":"expr","input":"n%s","query":"parse"}|}
                i
                (String.concat "" (List.init (i mod 5) (fun _ -> "+n")));
              Fmt.str
                {|{"id":"l%d","grammar":"expr_lr","input":"n+n*1","query":"member"}|}
                i;
              Fmt.str
                {|{"id":"s%d","grammar":"ss","input":"%s","query":"count"}|}
                i
                (String.make (1 + (i mod 6)) 'a') ])))

(* The stress differential: 4 scheduler domains must produce exactly the
   responses the serial loop produces, byte for byte (modulo timing
   fields). *)
let test_scheduler_parallel_identical () =
  let reqs = mixed_requests () in
  let total = List.length reqs in
  let render rs =
    String.concat "\n"
      (List.map (Protocol.response_to_json ~times:false) rs)
  in
  let serial =
    let reg = Registry.create ~result_cap:0 () in
    List.map (Exec.run reg) reqs
  in
  let parallel =
    let reg = Registry.create ~result_cap:0 () in
    (* pre-warm so artifact hit/miss fields match the serial run's
       steady state is not needed: both runs compile on first touch in
       submission order for serial; for parallel, compilation order can
       differ, so warm both ways instead *)
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    let reg_serial = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg_serial r.Protocol.cfg)) reqs;
    let sched = Scheduler.create ~domains:4 ~queue_cap:32 ~registry:reg () in
    let out = Array.make total None in
    List.iteri
      (fun i r -> Scheduler.submit sched r (fun resp -> out.(i) <- Some resp))
      reqs;
    Scheduler.shutdown sched;
    Array.to_list (Array.map Option.get out)
  in
  let serial_warm =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    List.map (Exec.run reg) reqs
  in
  check_int "every request answered" total (List.length parallel);
  check_string "parallel output identical to serial (warm)"
    (render serial_warm) (render parallel);
  (* verdicts (not cache fields) also match the fully cold serial run *)
  List.iter2
    (fun (a : Protocol.response) (b : Protocol.response) ->
      check_bool "verdict matches cold serial" true
        (a.Protocol.outcome = b.Protocol.outcome))
    serial parallel

let test_scheduler_shutdown_drains () =
  let reg = Registry.create () in
  let sched = Scheduler.create ~domains:2 ~queue_cap:128 ~registry:reg () in
  let req =
    match Protocol.parse_request {|{"grammar":"dyck","input":"(())"}|} with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let answered = Atomic.make 0 in
  for _ = 1 to 100 do
    Scheduler.submit sched req (fun _ -> Atomic.incr answered)
  done;
  Scheduler.shutdown sched;
  check_int "shutdown waits for every queued job" 100 (Atomic.get answered)

(* --- fault plane ---------------------------------------------------------- *)

module Fault = Sv.Fault
module Fuzz = Sv.Fuzz
module Probe = Lambekd_telemetry.Probe

let with_schedule s f =
  match Fault.parse s with
  | Error e -> Alcotest.failf "schedule %S: %s" s e
  | Ok cfg ->
    Fault.install cfg;
    Fun.protect ~finally:Fault.clear f

let test_fault_parse () =
  check_bool "empty schedule ok" true (Result.is_ok (Fault.parse ""));
  check_bool "full schedule ok" true
    (Result.is_ok
       (Fault.parse
          "seed=42;exec.run:fail:0.3;registry.get:corrupt:0.5,scheduler.claim:delay:0.1:2"));
  check_bool "not active before install" false (Fault.active ());
  with_schedule "seed=1;exec.run:fail:0.1" (fun () ->
      check_bool "active after install" true (Fault.active ()));
  check_bool "cleared" false (Fault.active ());
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true (Result.is_error (Fault.parse s)))
    [ "bogus.site:fail:0.1"; "exec.run:explode:0.1"; "exec.run:fail:nan";
      "exec.run:fail:1.5"; "exec.run:fail"; "seed=x;exec.run:fail:0.1";
      "exec.run:delay:0.1:-3"; "exec.run:delay:0.1:2:9" ]

(* The determinism contract: a schedule's draw stream is a pure function
   of (seed, site, sequence), so two installs produce the same pattern. *)
let test_fault_deterministic () =
  let pattern () =
    with_schedule "seed=9;exec.run:fail:0.5" (fun () ->
        List.init 200 (fun _ ->
            match Fault.disrupt Fault.Exec_run with
            | () -> false
            | exception Fault.Injected _ -> true))
  in
  let p1 = pattern () and p2 = pattern () in
  check_bool "same draw pattern on reinstall" true (p1 = p2);
  check_bool "some draws fail" true (List.mem true p1);
  check_bool "some draws pass" true (List.mem false p1);
  (* the consecutive-failure cap: never more than 3 fails in a row *)
  let worst, _ =
    List.fold_left
      (fun (worst, run) f ->
        let run = if f then run + 1 else 0 in
        (max worst run, run))
      (0, 0) p1
  in
  check_bool "at most 3 consecutive fails" true (worst <= 3)

(* Output invariance: with result caching off, responses under any fault
   schedule are byte-identical to an unfaulted run (the tentpole
   invariant; [lambekd fuzz] checks it at scale and under concurrency). *)
let test_fault_output_invariant () =
  let reqs = mixed_requests () in
  let render r = Protocol.response_to_json ~times:false r in
  let run_all () =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    List.map (fun r -> render (Exec.run reg r)) reqs
  in
  let clean = run_all () in
  List.iter
    (fun s ->
      let faulted = with_schedule s run_all in
      check_bool ("byte-identical under " ^ s) true
        (List.equal String.equal clean faulted))
    [ "seed=1;exec.run:fail:0.5";
      "seed=2;registry.get:corrupt:0.5;registry.result:corrupt:0.5";
      "seed=3;exec.run:corrupt:0.3;registry.get:delay:0.05:1";
      "seed=4;exec.run:fail:0.5;registry.get:corrupt:0.5" ]

let test_fault_verdict_invariant_with_cache () =
  (* with result caching ON, corrupt may flip a result:"hit" to "miss",
     but verdicts still match the clean run *)
  let reqs = mixed_requests () in
  let verdicts reg =
    List.map (fun r -> (Exec.run reg r).Protocol.outcome) reqs
  in
  let clean = verdicts (Registry.create ()) in
  let faulted =
    with_schedule "seed=5;registry.result:corrupt:0.5" (fun () ->
        verdicts (Registry.create ()))
  in
  check_bool "verdicts invariant under result-cache corruption" true
    (clean = faulted)

(* --- scheduler: queued-deadline expiry ------------------------------------ *)

let test_queue_expiry () =
  (* domains = 0: the job provably sits queued past its deadline before
     [drain_one] runs it *)
  let was_enabled = Probe.enabled () in
  Probe.enable ();
  let c = Probe.counter "scheduler.expired_in_queue" in
  let before = Probe.value c in
  let reg = Registry.create () in
  let sched = Scheduler.create ~domains:0 ~queue_cap:4 ~registry:reg () in
  let req =
    match
      Protocol.parse_request
        {|{"id":"q1","grammar":"dyck","input":"(())","timeout_ms":5}|}
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let got = ref None in
  (match Scheduler.try_submit sched req (fun r -> got := Some r) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit");
  Unix.sleepf 0.02;
  check_bool "drained" true (Scheduler.drain_one sched);
  Scheduler.shutdown sched;
  if not was_enabled then Probe.disable ();
  match !got with
  | Some r ->
    (match r.Protocol.outcome with
    | Error (Protocol.Timeout { after_ms }) ->
      check_bool "echoes the budget" true (after_ms = 5.)
    | _ -> Alcotest.fail "expected a timeout");
    check_string "no engine ever ran" "" r.Protocol.engine_used;
    check_string "response keeps the id" "q1"
      (Option.value ~default:"" r.Protocol.rid);
    check_bool "expiry counted" true (Probe.value c > before)
  | None -> Alcotest.fail "no response"

(* --- fuzz: the in-process differential ------------------------------------ *)

let test_fuzz_differential () =
  List.iter
    (fun (seed, schedule) ->
      let schedule =
        Option.map
          (fun s ->
            match Fault.parse s with
            | Ok cfg -> (cfg, s)
            | Error e -> Alcotest.failf "schedule %S: %s" s e)
          schedule
      in
      match
        Fuzz.differential ~domains:2 ?schedule ~seed ~requests:80 ()
      with
      | Ok r ->
        check_int "all lines generated" 80 r.Fuzz.lines;
        check_bool "responses produced" true (r.Fuzz.responses > 0)
      | Error msg -> Alcotest.failf "differential (seed %d): %s" seed msg)
    [ (7, None); (8, Some "seed=2;exec.run:fail:0.4;registry.get:corrupt:0.5") ]

(* --- fuzz: the committed corpus ------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Every corpus case replays against its committed golden through the
   serial reference — the regression net for protocol and engine output
   (regenerate with [lambekd fuzz --corpus test/data/fuzz --write-goldens]). *)
let test_fuzz_corpus () =
  let dir = "data/fuzz" in
  let cases =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ndjson")
    |> List.sort String.compare
  in
  check_bool "at least 20 corpus cases" true (List.length cases >= 20);
  List.iter
    (fun case ->
      let lines = read_lines (Filename.concat dir case) in
      let golden =
        read_lines
          (Filename.concat dir (Filename.chop_suffix case ".ndjson" ^ ".expected"))
      in
      let reg = Registry.create ~result_cap:0 () in
      let got = Fuzz.reference reg lines in
      check_int (case ^ ": response count") (List.length golden)
        (List.length got);
      List.iteri
        (fun i (want, have) ->
          check_string (Fmt.str "%s: response %d" case i) want have)
        (List.combine golden got))
    cases

(* --- engine counters ------------------------------------------------------ *)

(* exec.engine.* records which machinery served each request (cache hits
   included: the engine was still the resolved choice). *)
let test_engine_counters () =
  let was_enabled = Probe.enabled () in
  Probe.enable ();
  let counter n = Probe.counter ("exec.engine." ^ n) in
  let names = [ "ll1"; "slr"; "earley"; "cyk"; "enum"; "forest" ] in
  let before = List.map (fun n -> (n, Probe.value (counter n))) names in
  let reg = Registry.create ~result_cap:0 () in
  let run line =
    match Protocol.parse_request line with
    | Ok r -> ignore (Exec.run reg r)
    | Error e -> Alcotest.fail e
  in
  run {|{"grammar":"expr","input":"n"}|};
  (* auto → ll1 *)
  run {|{"grammar":"expr_lr","input":"n"}|};
  (* auto → slr *)
  run {|{"grammar":"expr_plain","input":"n+n","engine":"earley"}|};
  run {|{"grammar":"expr_plain","input":"n+n","engine":"earley","leo":false}|};
  run {|{"grammar":"dyck","input":"()","engine":"enum"}|};
  run {|{"grammar":"anbn","input":"ab","engine":"cyk"}|};
  run {|{"grammar":"ss","input":"aaa","query":"count"}|};
  (* count → forest *)
  let grew n want =
    let b = List.assoc n before in
    check_int ("exec.engine." ^ n) (b + want) (Probe.value (counter n))
  in
  grew "ll1" 1;
  grew "slr" 1;
  grew "earley" 2;
  grew "cyk" 1;
  grew "enum" 1;
  grew "forest" 1;
  if not was_enabled then Probe.disable ()

(* --- pooled scratch ------------------------------------------------------- *)

(* Requests that hammer the allocation-lean paths: Earley charts (leo on
   and pinned off), Leo expansion + tree rendering from pooled charts,
   and forest node arenas — against a handful of artifacts with input
   sizes that grow and shrink, so a stale scratch entry from a longer
   earlier run would surface as a wrong verdict or a corrupt tree. *)
let scratch_requests () =
  List.filter_map
    (fun line ->
      match Protocol.parse_request line with
      | Ok r -> Some r
      | Error e -> Alcotest.fail e)
    (List.concat
       (List.init 30 (fun i ->
            [ Fmt.str
                {|{"id":"p%d","grammar":"expr_plain","input":"n%s","query":"parse","engine":"earley"}|}
                i
                (String.concat "" (List.init (i * 5 mod 23) (fun _ -> "+n")));
              Fmt.str
                {|{"id":"m%d","grammar":"anbn","input":"%s","engine":"earley","leo":%b}|}
                i
                (String.make (i mod 9) 'a' ^ String.make (i mod 9) 'b')
                (i mod 2 = 0);
              Fmt.str
                {|{"id":"c%d","grammar":"ss","input":"%s","query":"count"}|}
                i
                (String.make (1 + (i * 3 mod 14)) 'a');
              Fmt.str
                {|{"id":"d%d","grammar":"dyck","input":"%s","query":"parse","engine":"earley"}|}
                i
                (String.concat "" (List.init (i mod 11) (fun _ -> "()"))) ])))

(* Pooled scratch must never leak state across requests or domains: the
   4-domain run must be byte-identical to the serial reference, clean and
   under a committed fault schedule (faults retry requests, re-entering
   scratch checkout on the same worker). *)
let test_scratch_domain_stress () =
  let was_enabled = Probe.enabled () in
  Probe.enable ();
  let reuse = Probe.counter "earley.scratch_reuse" in
  let reuse_before = Probe.value reuse in
  let reqs = scratch_requests () in
  let total = List.length reqs in
  let render rs =
    String.concat "\n" (List.map (Protocol.response_to_json ~times:false) rs)
  in
  let serial =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    render (List.map (Exec.run reg) reqs)
  in
  check_bool "serial run reuses pooled scratch" true
    (Probe.value reuse > reuse_before);
  let parallel () =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    let sched = Scheduler.create ~domains:4 ~queue_cap:128 ~registry:reg () in
    let out = Array.make total None in
    List.iteri
      (fun i r -> Scheduler.submit sched r (fun resp -> out.(i) <- Some resp))
      reqs;
    Scheduler.shutdown sched;
    render (Array.to_list (Array.map Option.get out))
  in
  check_string "4-domain scratch churn byte-identical to serial" serial
    (parallel ());
  let faulted =
    with_schedule "seed=11;exec.run:fail:0.4;registry.get:corrupt:0.4"
      (fun () -> parallel ())
  in
  check_string "identical under fault schedule too" serial faulted;
  if not was_enabled then Probe.disable ()

(* --- operations plane: admin lines, traces, cache stats ------------------- *)

module Trace = Sv.Trace

let test_parse_line_admin () =
  (match Protocol.parse_line {|{"op":"health"}|} with
  | Ok (Protocol.Admin { aid = None; op = Protocol.Op_health }) -> ()
  | _ -> Alcotest.fail "bare health op");
  (match Protocol.parse_line {|{"id":"a1","op":"metrics"}|} with
  | Ok (Protocol.Admin { aid = Some "a1"; op = Protocol.Op_metrics }) -> ()
  | _ -> Alcotest.fail "metrics op with id");
  (match Protocol.parse_line {|{"grammar":"dyck","input":"()"}|} with
  | Ok (Protocol.Request _) -> ()
  | _ -> Alcotest.fail "op-less lines still decode as requests");
  List.iter
    (fun line ->
      check_bool ("rejects " ^ line) true
        (Result.is_error (Protocol.parse_line line)))
    [ {|{"op":"frobnicate"}|}; {|{"op":7}|} ];
  (* normalized admin acks: no volatile fields, byte-reproducible *)
  check_string "ready" {|{"ok":true,"status":"ready"}|}
    (Protocol.health_response ~draining:false ~extra:[] ());
  check_string "draining, id mirrored"
    {|{"id":"a1","ok":true,"status":"draining"}|}
    (Protocol.health_response ~id:"a1" ~draining:true ~extra:[] ());
  check_string "metrics ack" {|{"id":"m","ok":true,"op":"metrics"}|}
    (Protocol.metrics_response ~id:"m" ~extra:[] ())

(* A front end in miniature: decode, assign the id, stamp the stages the
   serve loop and batch driver own, run, stamp written. *)
let run_traced ?(reg = Registry.create ()) line =
  match Protocol.parse_request line with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let tr = Option.get r.Protocol.trace in
    Trace.set_id tr "t0";
    Trace.stamp_received tr;
    Trace.stamp_dequeued tr;
    let resp = Exec.run reg r in
    Trace.stamp_written tr;
    (tr, resp)

let test_trace_decode_and_render () =
  (match Protocol.parse_request {|{"grammar":"dyck","input":"()"}|} with
  | Ok r -> check_bool "no trace by default" true (r.Protocol.trace = None)
  | Error e -> Alcotest.fail e);
  (match
     Protocol.parse_request {|{"grammar":"dyck","input":"()","trace":false}|}
   with
  | Ok r -> check_bool "trace:false is no trace" true (r.Protocol.trace = None)
  | Error e -> Alcotest.fail e);
  check_bool "trace must be a boolean" true
    (Result.is_error
       (Protocol.parse_request {|{"grammar":"dyck","input":"()","trace":1}|}));
  let tr, resp =
    run_traced {|{"id":"r1","grammar":"dyck","input":"()","trace":true}|}
  in
  (* normalized: id + stage presence only — the fuzz differential's oracle *)
  check_string "normalized render"
    {|{"id":"r1","ok":true,"verdict":"accept","engine":"ll1","artifact":"miss","result":"miss","trace":{"id":"t0","stages":["received","dequeued","engine_start","engine_end","written"]}}|}
    (Protocol.response_to_json ~times:false ~trace:tr resp);
  (* timed: stage durations and fault count ride along *)
  match Json.parse (Protocol.response_to_json ~trace:tr resp) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let t = Option.get (Json.mem "trace" j) in
    List.iter
      (fun f ->
        check_bool ("timed trace has " ^ f) true (Json.mem f t <> None))
      [ "id"; "queue_ns"; "engine_ns"; "total_ns"; "compile_ns"; "faults" ]

let test_exec_trace_stages () =
  let reg = Registry.create () in
  let line = {|{"grammar":"dyck","input":"(())","trace":true}|} in
  let cold, cold_resp = run_traced ~reg line in
  check_bool "cold run reaches the engine" true
    (Trace.stages cold
    = [ "received"; "dequeued"; "engine_start"; "engine_end"; "written" ]);
  check_bool "cold run pays a compile" false (Float.is_nan cold.Trace.compile_ns);
  check_bool "cold result is a miss" true
    (cold_resp.Protocol.result_cache = `Miss);
  let warm, warm_resp = run_traced ~reg line in
  check_bool "result-cache hit skips the engine" true
    (Trace.stages warm = [ "received"; "dequeued"; "written" ]);
  check_bool "warm result is a hit" true
    (warm_resp.Protocol.result_cache = `Hit);
  check_bool "warm run pays no compile" true (Float.is_nan warm.Trace.compile_ns);
  let expired, expired_resp =
    run_traced ~reg {|{"grammar":"dyck","input":"()","timeout_ms":0,"trace":true}|}
  in
  check_bool "expired deadline never starts the engine" true
    (Trace.stages expired = [ "received"; "dequeued"; "written" ]);
  (match expired_resp.Protocol.outcome with
  | Error (Protocol.Timeout _) -> ()
  | _ -> Alcotest.fail "expected a timeout");
  check_int "no faults in a clean run" 0 cold.Trace.faults

let test_registry_stats () =
  let reg = Registry.create ~artifact_cap:1 ~result_cap:8 () in
  let d = Option.get (Builtin.find "dyck") in
  let e = Option.get (Builtin.find "expr") in
  ignore (Registry.get reg d);
  ignore (Registry.get reg d);
  let art, _ = Registry.get reg e in
  (* expr evicted dyck (cap 1) *)
  let s = Registry.stats reg in
  check_int "artifact size" 1 s.Registry.artifact_size;
  check_int "artifact cap" 1 s.Registry.artifact_cap;
  check_int "artifact evictions" 1 s.Registry.artifact_evictions;
  check_int "artifact hits" 1 s.Registry.artifact_hits;
  check_int "artifact misses" 2 s.Registry.artifact_misses;
  let digest = art.Registry.digest and key = "member:auto" in
  check_bool "result probe misses" true
    (Registry.find_result reg ~digest ~key ~input:"n" = None);
  Registry.put_result reg ~digest ~key ~input:"n" (Protocol.Accepted None);
  check_bool "result probe hits" true
    (Registry.find_result reg ~digest ~key ~input:"n"
    = Some (Protocol.Accepted None));
  let s = Registry.stats reg in
  check_int "result size" 1 s.Registry.result_size;
  check_int "result hits" 1 s.Registry.result_hits;
  check_int "result misses" 1 s.Registry.result_misses;
  Registry.with_scratch art (fun _ ->
      let s = Registry.stats reg in
      check_int "scratch checked out" 1 s.Registry.scratch_out);
  let s = Registry.stats reg in
  check_int "scratch checked back in" 0 s.Registry.scratch_out;
  check_bool "scratch parked" true (s.Registry.scratch_free >= 1)

(* Satellite: trace determinism.  The same traced stream through the
   serial reference and a 4-domain scheduler — the service side under a
   committed fault schedule — must render byte-identically with times
   off: stage presence is a function of control flow, not of timing,
   domain count, or fault luck. *)
let test_trace_parallel_identical () =
  let lines =
    List.concat
      (List.init 12 (fun i ->
           [ Fmt.str
               {|{"id":"d%d","grammar":"dyck","input":"%s","trace":true}|} i
               (String.concat "" (List.init (i mod 5) (fun _ -> "()")));
             Fmt.str
               {|{"id":"e%d","grammar":"expr","input":"n%s","query":"parse","trace":true}|}
               i
               (String.concat "" (List.init (i mod 4) (fun _ -> "+n")));
             Fmt.str
               {|{"id":"s%d","grammar":"ss","input":"%s","query":"count","trace":true}|}
               i
               (String.make (1 + (i mod 4)) 'a') ]))
  in
  (* each run re-parses so each side stamps its own fresh traces *)
  let parse_all () =
    List.map
      (fun l ->
        match Protocol.parse_request l with
        | Ok r -> r
        | Error e -> Alcotest.fail e)
      lines
  in
  let prep i (r : Protocol.request) =
    let tr = Option.get r.Protocol.trace in
    Trace.set_id tr (Fmt.str "t%d" i);
    Trace.stamp_received tr;
    tr
  in
  let render tr resp = Protocol.response_to_json ~times:false ~trace:tr resp in
  let serial =
    let reqs = parse_all () in
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    List.mapi
      (fun i r ->
        let tr = prep i r in
        Trace.stamp_dequeued tr;
        let resp = Exec.run reg r in
        Trace.stamp_written tr;
        render tr resp)
      reqs
  in
  let parallel () =
    let reqs = parse_all () in
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    let sched = Scheduler.create ~domains:4 ~queue_cap:64 ~registry:reg () in
    let out = Array.make (List.length reqs) None in
    List.iteri
      (fun i r ->
        let tr = prep i r in
        Scheduler.submit sched r (fun resp ->
            Trace.stamp_written tr;
            out.(i) <- Some (render tr resp)))
      reqs;
    Scheduler.shutdown sched;
    Array.to_list (Array.map Option.get out)
  in
  check_bool "4-domain traces identical to serial" true
    (List.equal String.equal serial (parallel ()));
  let faulted =
    with_schedule "seed=2;exec.run:fail:0.4;registry.get:corrupt:0.5"
      (fun () -> parallel ())
  in
  check_bool "identical under a committed fault schedule" true
    (List.equal String.equal serial faulted)

let test_slow_line_shape () =
  let tr = Trace.create ~id:"t9" () in
  tr.Trace.received_ns <- 1000.;
  tr.Trace.dequeued_ns <- 3000.;
  tr.Trace.engine_start_ns <- 4000.;
  tr.Trace.engine_end_ns <- 9000.;
  tr.Trace.written_ns <- 11000.;
  Trace.set_compile_ns tr 500.;
  Trace.add_fault tr;
  let resp =
    { Protocol.rid = Some "r9";
      outcome = Ok (Protocol.Accepted None);
      engine_used = "earley";
      artifact_cache = `Miss;
      result_cache = `Miss;
      dur_ns = 10000. }
  in
  check_string "slow record"
    {|{"ev":"slow","id":"r9","trace":"t9","ok":true,"engine":"earley","artifact":"miss","result":"miss","queue_ns":2000,"engine_ns":5000,"total_ns":10000,"compile_ns":500,"faults":1}|}
    (Protocol.slow_line tr resp);
  (* failure shape: no engine/cache fields, error tag instead *)
  let timeout_resp = Protocol.timeout ~id:"r10" ~after_ms:5. () in
  let tr2 = Trace.create ~id:"t10" () in
  tr2.Trace.received_ns <- 0.;
  tr2.Trace.written_ns <- 7000.;
  check_string "slow timeout record"
    {|{"ev":"slow","id":"r10","trace":"t10","ok":false,"error":"timeout","total_ns":7000,"faults":0}|}
    (Protocol.slow_line tr2 timeout_resp)

(* --- json: RFC 8259 numbers ----------------------------------------------- *)

let test_json_numbers () =
  let ok s v =
    match Json.parse s with
    | Ok (Json.Num f) -> check_bool (Fmt.str "%s parses" s) true (f = v)
    | Ok _ -> Alcotest.failf "%s: not a number" s
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  let bad s =
    check_bool (Fmt.str "rejects %s" s) true
      (Result.is_error (Json.parse s))
  in
  List.iter (fun (s, v) -> ok s v)
    [ ("0", 0.); ("-0", 0.); ("0.5", 0.5); ("10", 10.); ("1e10", 1e10);
      ("1.25e-3", 1.25e-3); ("-120", -120.); ("0.0625", 0.0625) ];
  (* a leading zero in the integer part is not JSON: the part is "0" or
     starts with a nonzero digit (RFC 8259 §6) *)
  List.iter bad
    [ "01"; "00"; "-0042"; "0123.5"; {|{"timeout_ms":01}|}; {|[01]|} ];
  (match Json.parse "01" with
  | Error e ->
    check_bool "error names the leading zero" true
      (contains ~affix:"leading zero" e)
  | Ok _ -> Alcotest.fail "01 accepted");
  (* the usual non-JSON number spellings stay rejected *)
  List.iter bad
    [ "0x1p3"; "1_000"; "nan"; "inf"; "+1"; "1."; ".5"; "1e"; "-"; "--1" ]

(* --- protocol: session lines ----------------------------------------------- *)

let sline l =
  match Protocol.parse_line l with
  | Ok (Protocol.Session sq) -> sq
  | Ok _ -> Alcotest.failf "not a session line: %s" l
  | Error e -> Alcotest.failf "%s: %s" l e

let test_parse_session_lines () =
  let sq = sline {|{"op":"session_open","id":"o1","grammar":"dyck"}|} in
  check_string "open id" "o1" (Option.value ~default:"" sq.Protocol.sq_id);
  check_string "open carries no sid" "" sq.Protocol.sq_sid;
  (match sq.Protocol.sq_op with
  | Protocol.S_open { gname; leo; _ } ->
    check_string "grammar name" "dyck" gname;
    check_bool "leo defaults to None" true (leo = None)
  | _ -> Alcotest.fail "expected S_open");
  (match sline {|{"op":"append","session":"s0","chunk":"(("}|} with
  | { Protocol.sq_sid = "s0"; sq_op = Protocol.S_append { chunk = "((" }; _ }
    -> ()
  | _ -> Alcotest.fail "append decode");
  (* edit defaults: del = 0, ins = "" *)
  (match (sline {|{"op":"edit","session":"s0","at":3}|}).Protocol.sq_op with
  | Protocol.S_edit { at = 3; del = 0; ins = "" } -> ()
  | _ -> Alcotest.fail "edit defaults");
  (match
     (sline {|{"op":"query","session":"s0","timeout_ms":0}|}).Protocol.sq_op
   with
  | Protocol.S_query { q = Protocol.Membership } -> ()
  | _ -> Alcotest.fail "query defaults to member");
  (match (sline {|{"op":"query","session":"s0","query":"parse"}|}).Protocol.sq_op
   with
  | Protocol.S_query { q = Protocol.Parse } -> ()
  | _ -> Alcotest.fail "query parse");
  (match (sline {|{"op":"session_close","session":"s9"}|}).Protocol.sq_op with
  | Protocol.S_close -> ()
  | _ -> Alcotest.fail "close decode");
  (* inline grammars open sessions too *)
  (match
     (sline
        {|{"op":"session_open","grammar":{"start":"S","prods":[["S",[]],["S",["'a'","S","'b'"]]]}}|})
       .Protocol.sq_op
   with
  | Protocol.S_open { gname = "inline"; _ } -> ()
  | _ -> Alcotest.fail "inline open");
  let err l affix =
    match Protocol.parse_line l with
    | Error e ->
      check_bool (Fmt.str "%s -> %s" l affix) true (contains ~affix e)
    | Ok _ -> Alcotest.failf "decoded: %s" l
  in
  err {|{"op":"append","chunk":"x"}|} {|needs a "session" id|};
  err {|{"op":"append","session":"","chunk":"x"}|} "non-empty id string";
  err {|{"op":"append","session":"s0"}|} {|needs a "chunk" string|};
  err {|{"op":"edit","session":"s0"}|} {|needs an "at" position|};
  err {|{"op":"edit","session":"s0","at":-1}|} "non-negative integer";
  err {|{"op":"edit","session":"s0","at":0,"ins":7}|} {|"ins" must be a string|};
  err {|{"op":"query","session":"s0","query":"count"}|}
    {|unknown session query "count" (member|parse)|};
  err {|{"op":"session_open","grammar":"nosuch"}|} "unknown grammar";
  err {|{"op":"frobnicate"}|} "unknown op"

(* --- exec: a zero budget is decided before dispatch ------------------------ *)

let test_exec_zero_budget () =
  (* populate the result cache, then prove a zero budget answers before
     the cache could: the deadline gate runs before any registry or
     cache lookup, so the response shows no engine or cache involvement *)
  let reg = Registry.create () in
  let line = {|{"grammar":"dyck","input":"(())"}|} in
  let warm = run_line ~reg line in
  check_bool "warming run accepted" true
    (warm.Protocol.outcome = Ok (Protocol.Accepted None));
  let r = run_line ~reg {|{"grammar":"dyck","input":"(())","timeout_ms":0}|} in
  (match r.Protocol.outcome with
  | Error (Protocol.Timeout { after_ms }) ->
    check_bool "after_ms echoes the budget" true (after_ms = 0.)
  | _ -> Alcotest.fail "expected a timeout");
  check_string "no engine ran" "" r.Protocol.engine_used;
  check_bool "no artifact lookup" true (r.Protocol.artifact_cache = `None);
  check_bool "no result lookup" true (r.Protocol.result_cache = `None)

(* --- sessions: the service-level table ------------------------------------- *)

module Session = Sv.Session

let srun tab l = Session.exec (Session.route tab (sline l))

let session_state name (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok (Protocol.Session_state { len; accept; tree }) -> (len, accept, tree)
  | _ -> Alcotest.failf "%s: expected a session state" name

let session_sid name (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok (Protocol.Session_opened { sid }) -> sid
  | _ -> Alcotest.failf "%s: expected session_opened" name

let test_session_flow () =
  let reg = Registry.create ~result_cap:0 () in
  let tab = Session.create ~registry:reg () in
  check_string "first sid" "s0"
    (session_sid "open" (srun tab {|{"op":"session_open","grammar":"dyck"}|}));
  let r = srun tab {|{"op":"append","session":"s0","chunk":"(("}|} in
  check_string "session answers say so" "session" r.Protocol.engine_used;
  let len, accept, _ = session_state "append 1" r in
  check_int "len after append" 2 len;
  check_bool "(( rejected" false accept;
  let len, accept, _ =
    session_state "append 2"
      (srun tab {|{"op":"append","session":"s0","chunk":"))"}|})
  in
  check_int "len after second append" 4 len;
  check_bool "(()) accepted" true accept;
  (* a parse query returns the same tree a stateless parse of the
     buffer would *)
  let _, _, tree =
    session_state "query parse"
      (srun tab {|{"op":"query","session":"s0","query":"parse"}|})
  in
  let want =
    match
      (run_line ~reg {|{"grammar":"dyck","input":"(())","query":"parse"}|})
        .Protocol.outcome
    with
    | Ok (Protocol.Accepted t) -> t
    | _ -> Alcotest.fail "stateless parse failed"
  in
  check_bool "session tree = stateless tree" true
    (tree <> None && tree = want);
  let len, accept, _ =
    session_state "edit"
      (srun tab {|{"op":"edit","session":"s0","at":0,"del":4,"ins":"()"}|})
  in
  check_int "len after edit" 2 len;
  check_bool "() accepted" true accept;
  check_int "one live session" 1 (Session.live tab);
  (match
     (srun tab {|{"op":"session_close","session":"s0"}|}).Protocol.outcome
   with
  | Ok (Protocol.Session_closed { sid }) -> check_string "closed sid" "s0" sid
  | _ -> Alcotest.fail "expected session_closed");
  check_int "no live sessions" 0 (Session.live tab);
  (* a close unbinds the name at routing time *)
  (match
     (srun tab {|{"op":"append","session":"s0","chunk":"x"}|}).Protocol.outcome
   with
  | Error (Protocol.Bad_request e) ->
    check_bool "unknown after close" true (contains ~affix:"unknown session" e)
  | _ -> Alcotest.fail "expected a bad request")

let test_session_validation () =
  let reg = Registry.create () in
  let tab = Session.create ~max_buf:8 ~registry:reg () in
  ignore (srun tab {|{"op":"session_open","grammar":"dyck"}|});
  let bad name l affix =
    match (srun tab l).Protocol.outcome with
    | Error (Protocol.Bad_request e) -> check_bool name true (contains ~affix e)
    | _ -> Alcotest.failf "%s: expected a bad request" name
  in
  bad "edit beyond end" {|{"op":"edit","session":"s0","at":5,"ins":"x"}|}
    "beyond buffer length";
  bad "delete past end" {|{"op":"edit","session":"s0","at":0,"del":3}|}
    "beyond buffer length";
  bad "append over max_buf"
    {|{"op":"append","session":"s0","chunk":"((((((((("}|} "would exceed";
  bad "unknown sid" {|{"op":"append","session":"zzz","chunk":"x"}|}
    {|unknown session "zzz"|};
  (* a rejected op leaves the buffer untouched *)
  let len, _, _ =
    session_state "query" (srun tab {|{"op":"query","session":"s0"}|})
  in
  check_int "buffer unchanged by rejected ops" 0 len;
  (* a zero budget times out deterministically and mutates nothing *)
  (match
     (srun tab {|{"op":"append","session":"s0","chunk":"()","timeout_ms":0}|})
       .Protocol.outcome
   with
  | Error (Protocol.Timeout { after_ms }) ->
    check_bool "zero budget" true (after_ms = 0.)
  | _ -> Alcotest.fail "expected a timeout");
  let len, _, _ =
    session_state "query" (srun tab {|{"op":"query","session":"s0"}|})
  in
  check_int "buffer unchanged by a timed-out op" 0 len;
  (* a timed-out open still consumed its id at routing: the name exists
     but is never opened, and the next open does not reuse it *)
  (match
     (srun tab {|{"op":"session_open","grammar":"dyck","timeout_ms":0}|})
       .Protocol.outcome
   with
  | Error (Protocol.Timeout _) -> ()
  | _ -> Alcotest.fail "expected the open to time out");
  bad "ops on a timed-out open"
    {|{"op":"append","session":"s1","chunk":"x"}|} "is not open";
  check_string "ids are never reused" "s2"
    (session_sid "reopen" (srun tab {|{"op":"session_open","grammar":"dyck"}|}));
  Session.close_all tab;
  check_int "close_all empties the table" 0 (Session.live tab)

let test_session_eviction () =
  let reg = Registry.create () in
  let tab = Session.create ~cap:2 ~registry:reg () in
  let open_one () =
    session_sid "open" (srun tab {|{"op":"session_open","grammar":"dyck"}|})
  in
  let s0 = open_one () in
  let s1 = open_one () in
  (* touching s0 makes s1 the LRU victim of the third open *)
  ignore
    (srun tab (Fmt.str {|{"op":"append","session":"%s","chunk":"()"}|} s0));
  check_string "ids in open order" "s2" (open_one ());
  check_int "cap holds" 2 (Session.live tab);
  check_int "one eviction" 1 (Session.evictions tab);
  (match
     (srun tab (Fmt.str {|{"op":"append","session":"%s","chunk":"x"}|} s1))
       .Protocol.outcome
   with
  | Error (Protocol.Bad_request e) ->
    check_bool "evicted name unbound" true (contains ~affix:"unknown session" e)
  | _ -> Alcotest.fail "expected a bad request");
  let _, accept, _ =
    session_state "s0 survives"
      (srun tab (Fmt.str {|{"op":"query","session":"%s"}|} s0))
  in
  check_bool "s0 kept its buffer" true accept;
  Session.close_all tab;
  check_int "close_all empties the table" 0 (Session.live tab)

(* paranoid mode cross-checks every incremental answer against a
   from-scratch oracle; on agreement the answers are unchanged *)
let test_session_paranoid () =
  let reg = Registry.create () in
  let tab = Session.create ~paranoid:true ~registry:reg () in
  check_bool "flag readable" true (Session.paranoid tab);
  ignore (srun tab {|{"op":"session_open","grammar":"anbn"}|});
  List.iter
    (fun (l, want) ->
      let _, accept, _ = session_state l (srun tab l) in
      check_bool l want accept)
    [ ({|{"op":"append","session":"s0","chunk":"aab"}|}, false);
      ({|{"op":"append","session":"s0","chunk":"b"}|}, true);
      ({|{"op":"edit","session":"s0","at":1,"del":2,"ins":"abab"}|}, false);
      ({|{"op":"edit","session":"s0","at":0,"del":6,"ins":"aaabbb"}|}, true);
      ({|{"op":"query","session":"s0","query":"parse"}|}, true) ];
  Session.close_all tab

(* --- sessions: qcheck differential against the 4-domain scheduler ---------- *)

(* Deterministic wire scripts from op-code tuples: every generated open
   allocates the next "sN", so the script can name sessions that are
   guaranteed to decode (and sometimes ones already closed or never
   opened — those must fail identically on both sides). *)
let build_session_lines ops =
  let opened = ref 1 in
  let lines =
    List.map
      (fun (code, a, d, s) ->
        let sid = Fmt.str "s%d" (a mod !opened) in
        let chunk =
          String.init (s mod 5) (fun i ->
              match (a + s + i) mod 4 with
              | 0 -> '('
              | 1 -> ')'
              | 2 -> 'a'
              | _ -> 'b')
        in
        match code with
        | 0 ->
          incr opened;
          Fmt.str {|{"op":"session_open","grammar":"%s"}|}
            (if d mod 2 = 0 then "dyck" else "anbn")
        | 1 | 2 | 3 ->
          Fmt.str {|{"op":"append","session":"%s","chunk":"%s"}|} sid chunk
        | 4 | 5 ->
          Fmt.str {|{"op":"edit","session":"%s","at":%d,"del":%d,"ins":"%s"}|}
            sid (s mod 8) (d mod 3) chunk
        | 6 | 7 ->
          Fmt.str {|{"op":"query","session":"%s","query":"%s"}|} sid
            (if d mod 2 = 0 then "member" else "parse")
        | 8 -> Fmt.str {|{"op":"session_close","session":"%s"}|} sid
        | _ ->
          Fmt.str {|{"op":"append","session":"nosuch","chunk":"%s"}|} chunk)
      ops
  in
  {|{"op":"session_open","grammar":"dyck"}|} :: lines

(* both replays must see identical artifact hit/miss on opens, so both
   registries are pre-warmed with every grammar the script can name *)
let warm_session_reg reg =
  List.iter
    (fun g ->
      match Builtin.find g with
      | Some cfg -> ignore (Registry.get reg cfg)
      | None -> Alcotest.failf "builtin %s missing" g)
    [ "dyck"; "anbn" ]

let replay_sessions_parallel lines =
  let reg = Registry.create ~result_cap:0 () in
  warm_session_reg reg;
  let sched = Scheduler.create ~domains:4 ~queue_cap:64 ~registry:reg () in
  let tab = Session.create ~registry:reg () in
  let out = Array.make (List.length lines) "" in
  let pending = ref 0 in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  List.iteri
    (fun i l ->
      (* routing happens here, on the submitting thread in line order *)
      let routed = Session.route tab (sline l) in
      Mutex.protect mu (fun () -> incr pending);
      Scheduler.submit_session sched routed (fun r ->
          out.(i) <- Protocol.response_to_json ~times:false r;
          Mutex.protect mu (fun () ->
              decr pending;
              Condition.signal cv)))
    lines;
  Mutex.protect mu (fun () ->
      while !pending > 0 do
        Condition.wait cv mu
      done);
  Session.close_all tab;
  Scheduler.shutdown sched;
  Array.to_list out

let prop_session_service_differential =
  QCheck.Test.make ~count:15
    ~name:"sessions: 4-domain replay identical to serial (clean and faulted)"
    (QCheck.make
       ~print:(fun ops -> String.concat "\n" (build_session_lines ops))
       QCheck.Gen.(
         list_size (int_range 4 18)
           (quad (int_bound 9) (int_bound 9) (int_bound 4) (int_bound 99))))
    (fun ops ->
      let lines = build_session_lines ops in
      let serial =
        let reg = Registry.create ~result_cap:0 () in
        warm_session_reg reg;
        Fuzz.reference reg lines
      in
      let parallel = replay_sessions_parallel lines in
      let faulted =
        with_schedule "seed=3;scheduler.claim:fail:0.4;registry.get:delay:0.3:2"
          (fun () -> replay_sessions_parallel lines)
      in
      List.equal String.equal serial parallel
      && List.equal String.equal serial faulted)

let suite =
  [ Alcotest.test_case "lru: recency eviction" `Quick test_lru_basic;
    Alcotest.test_case "lru: replace" `Quick test_lru_replace;
    Alcotest.test_case "lru: cap 0 disables" `Quick test_lru_disabled;
    Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: errors" `Quick test_json_errors;
    Alcotest.test_case "json: escapes" `Quick test_json_escapes;
    Alcotest.test_case "protocol: full request" `Quick test_parse_request;
    Alcotest.test_case "protocol: defaults" `Quick test_parse_request_defaults;
    Alcotest.test_case "protocol: inline grammar" `Quick
      test_parse_request_inline;
    Alcotest.test_case "protocol: bad requests" `Quick
      test_parse_request_errors;
    Alcotest.test_case "protocol: response rendering" `Quick
      test_response_json;
    Alcotest.test_case "registry: artifact caching" `Quick
      test_registry_caching;
    Alcotest.test_case "registry: structural digest" `Quick
      test_registry_digest_structural;
    Alcotest.test_case "registry: eviction recompiles" `Quick
      test_registry_eviction;
    Alcotest.test_case "registry: 100-grammar differential vs fresh compile"
      `Quick test_registry_differential;
    Alcotest.test_case "exec: engine policy" `Quick test_engine_policy;
    Alcotest.test_case "exec: engine pin errors" `Quick
      test_engine_pin_errors;
    Alcotest.test_case "exec: cyk binarization budget" `Quick
      test_cyk_budget_pin_error;
    Alcotest.test_case "exec: engines agree on dyck" `Quick
      test_verdicts_across_engines;
    Alcotest.test_case "exec: count query" `Quick test_count_query;
    Alcotest.test_case "exec: parse query returns tree" `Quick
      test_parse_query_tree;
    Alcotest.test_case "exec: timeout" `Quick test_timeout;
    Alcotest.test_case "exec: result cache" `Quick test_result_cache;
    Alcotest.test_case "scheduler: overload shedding" `Quick
      test_scheduler_shed;
    Alcotest.test_case "scheduler: 4-domain output identical to serial"
      `Quick test_scheduler_parallel_identical;
    Alcotest.test_case "scheduler: shutdown drains" `Quick
      test_scheduler_shutdown_drains;
    Alcotest.test_case "exec: engine counters" `Quick test_engine_counters;
    Alcotest.test_case "scratch: 4-domain pooled-state stress" `Quick
      test_scratch_domain_stress;
    Alcotest.test_case "json: surrogate pairs" `Quick test_json_surrogates;
    QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip;
    Alcotest.test_case "fault: schedule parsing" `Quick test_fault_parse;
    Alcotest.test_case "fault: deterministic draws, bounded fail runs"
      `Quick test_fault_deterministic;
    Alcotest.test_case "fault: output byte-invariant" `Quick
      test_fault_output_invariant;
    Alcotest.test_case "fault: verdicts invariant with result cache on"
      `Quick test_fault_verdict_invariant_with_cache;
    Alcotest.test_case "scheduler: queued deadline expiry" `Quick
      test_queue_expiry;
    Alcotest.test_case "fuzz: differential (clean and faulted)" `Quick
      test_fuzz_differential;
    Alcotest.test_case "fuzz: committed corpus matches goldens" `Quick
      test_fuzz_corpus;
    Alcotest.test_case "protocol: admin lines" `Quick test_parse_line_admin;
    Alcotest.test_case "trace: decode and render" `Quick
      test_trace_decode_and_render;
    Alcotest.test_case "trace: exec stage presence" `Quick
      test_exec_trace_stages;
    Alcotest.test_case "registry: cache statistics" `Quick test_registry_stats;
    Alcotest.test_case "trace: 4-domain identical to serial under faults"
      `Quick test_trace_parallel_identical;
    Alcotest.test_case "protocol: slow-request record" `Quick
      test_slow_line_shape;
    Alcotest.test_case "json: rfc 8259 numbers" `Quick test_json_numbers;
    Alcotest.test_case "protocol: session lines" `Quick
      test_parse_session_lines;
    Alcotest.test_case "exec: zero budget answered before dispatch" `Quick
      test_exec_zero_budget;
    Alcotest.test_case "session: open/append/edit/query/close" `Quick
      test_session_flow;
    Alcotest.test_case "session: validation and zero budgets" `Quick
      test_session_validation;
    Alcotest.test_case "session: lru eviction" `Quick test_session_eviction;
    Alcotest.test_case "session: paranoid oracle agrees" `Quick
      test_session_paranoid;
    QCheck_alcotest.to_alcotest prop_session_service_differential ]
