(* Tests for the persistent artifact store: validated round-trips,
   byte-identical responses with the store enabled / disabled /
   corrupted / mid-eviction, corruption fallback (never a crash or a
   changed response), concurrent same-digest write races, cap
   eviction, boot-time preload, and startup rejection of unusable
   roots. *)

module Sv = Lambekd_service
module Store = Sv.Store
module Registry = Sv.Registry
module Protocol = Sv.Protocol
module Exec = Sv.Exec
module Builtin = Sv.Builtin
module Fuzz = Sv.Fuzz
module Cfg = Lambekd_cfg.Cfg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every test gets a private store root under the build temp dir. *)
let temp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lambekd-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    (* stale leftovers from a killed run must not leak entries in *)
    (match Sys.readdir dir with
    | names ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) names
    | exception Sys_error _ -> ());
    dir

let open_store ?max_entries ?max_bytes () =
  match Store.open_root ?max_entries ?max_bytes (temp_root ()) with
  | Ok st -> st
  | Error msg -> Alcotest.failf "open_root: %s" msg

(* A traffic mix spanning the artifact surface: every engine family,
   weighted/k-best/mass queries, counting, an inline grammar, a cyk
   pin, and a budget-overflow bad request. *)
let traffic =
  [ {|{"id":"a","grammar":"dyck","input":"(())","query":"member"}|};
    {|{"id":"b","grammar":"expr","input":"n+n","query":"parse"}|};
    {|{"id":"c","grammar":"ss","input":"aaaa","query":"count"}|};
    {|{"id":"d","grammar":"ss","input":"aaa","query":"parse","kbest":3}|};
    {|{"id":"e","grammar":"ss","input":"aa","query":"mass"}|};
    {|{"id":"f","grammar":"dyck","input":"(()","query":"member","engine":"cyk"}|};
    {|{"id":"g","grammar":{"start":"S","prods":[["S",[]],["S",["'a'","S","'b'"]]]},"input":"aabb"}|};
    {|{"id":"h","grammar":"expr","input":"n+n","query":"parse","weights":[3,1,1,2,1]}|};
    {|{"id":"i","grammar":"anbn","input":"aaabbb","query":"member","engine":"earley"}|} ]

let run_lines reg lines =
  List.map
    (fun line ->
      match Protocol.parse_request line with
      | Error msg ->
        Protocol.response_to_json ~times:false (Protocol.bad_request msg)
      | Ok req ->
        Protocol.response_to_json ~times:false (Exec.run reg req))
    lines

(* responses from a storeless registry: the reference every store
   configuration must be byte-identical to *)
let reference_responses lines =
  run_lines (Registry.create ~result_cap:0 ()) lines

let digest_of name = Registry.digest_cfg (Option.get (Builtin.find name))

let entry_path st digest = Filename.concat (Store.root st) (digest ^ ".lks")

(* --- round trip ----------------------------------------------------------- *)

let test_roundtrip () =
  let st = open_store () in
  let want = reference_responses traffic in
  (* first boot: compiles, writes entries *)
  let reg1 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical on the writing boot" true
    (run_lines reg1 traffic = want);
  let s = Store.stats st in
  (* dyck, expr, ss, inline-anbn (the builtin "anbn" shares the inline
     grammar's structural digest, so they are one artifact) *)
  check_int "entries written" 4 s.Store.s_entries;
  check_bool "no hits yet" true (s.Store.s_hits = 0);
  (* "restart": a fresh registry against the same root loads instead of
     compiling *)
  let reg2 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical on the warm boot" true
    (run_lines reg2 traffic = want);
  let s = Store.stats st in
  check_bool "warm boot hit the store" true (s.Store.s_hits >= 4);
  check_int "no invalids" 0 s.Store.s_invalid

(* weight tables persisted via [Registry.persist] survive the restart:
   the warm boot serves a weighted request without re-normalizing *)
let test_persist_weights () =
  let st = open_store () in
  let cfg = Option.get (Builtin.find "expr") in
  let reg1 = Registry.create ~store:st () in
  let a, _ = Registry.get reg1 cfg in
  (match Registry.weights a (Builtin.default_weights "expr") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "weights: %s" e);
  check_bool "persist succeeds" true (Registry.persist reg1 a);
  let reg2 = Registry.create ~store:st () in
  let a2, _ = Registry.get reg2 cfg in
  (* the reloaded bundle carries the normalized table: the lookup
     succeeds and yields the same digest on both sides of the restart *)
  (match
     ( Registry.weights a (Builtin.default_weights "expr"),
       Registry.weights a2 (Builtin.default_weights "expr") )
   with
  | Ok w1, Ok w2 ->
    check_string "persisted weight table digest matches"
      (Lambekd_weighted.Weights.digest w1)
      (Lambekd_weighted.Weights.digest w2)
  | _ -> Alcotest.fail "weights lookup failed")

(* --- corruption ------------------------------------------------------------ *)

(* Corrupt one entry in a given way; the next boot must fall back to a
   fresh compile with byte-identical responses, count an invalid, and
   rewrite the entry. *)
let corruption_case mutate () =
  let st = open_store () in
  let want = reference_responses traffic in
  let reg1 = Registry.create ~result_cap:0 ~store:st () in
  ignore (run_lines reg1 traffic);
  let digest = digest_of "dyck" in
  let path = entry_path st digest in
  check_bool "entry exists before corruption" true (Sys.file_exists path);
  mutate path;
  let reg2 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical after corruption" true
    (run_lines reg2 traffic = want);
  let s = Store.stats st in
  check_bool "invalid counted" true (s.Store.s_invalid >= 1);
  (* the fallback compile rewrote the entry, and it validates again *)
  let reg3 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical after rewrite" true
    (run_lines reg3 traffic = want)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_corrupt_flip_byte =
  corruption_case (fun path ->
      let c = Bytes.of_string (read_file path) in
      (* flip a payload byte (past the ~200-byte header) *)
      let i = min (Bytes.length c - 1) 300 in
      Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0x5a));
      write_file path (Bytes.to_string c))

let test_corrupt_truncate =
  corruption_case (fun path ->
      let c = read_file path in
      write_file path (String.sub c 0 (String.length c / 2)))

let test_corrupt_zero_length = corruption_case (fun path -> write_file path "")

let test_corrupt_wrong_version =
  corruption_case (fun path ->
      let c = read_file path in
      (* "LAMBEKD-STORE 1\n..." -> version 999: recognizably ours but
         undecodable by this build *)
      let nl = String.index c '\n' in
      write_file path
        ("LAMBEKD-STORE 999\n"
        ^ String.sub c (nl + 1) (String.length c - nl - 1)))

let test_corrupt_garbage_header =
  corruption_case (fun path ->
      let c = read_file path in
      write_file path ("not a store entry at all\n" ^ c))

(* a checksum-valid file whose *payload* is not a marshalled bundle:
   decode itself must fail closed *)
let test_corrupt_valid_frame_bad_payload () =
  let st = open_store () in
  let want = reference_responses traffic in
  let digest = digest_of "dyck" in
  check_bool "save accepts arbitrary payloads" true
    (Store.save st ~digest "definitely not a marshalled artifact");
  let reg = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical over undecodable payload" true
    (run_lines reg traffic = want);
  check_bool "invalid counted" true ((Store.stats st).Store.s_invalid >= 1)

(* wrong-digest entry: frame validates, but the bundle inside is for a
   different grammar — the structural-digest revalidation rejects it *)
let test_corrupt_digest_mismatch () =
  let st = open_store () in
  let want = reference_responses traffic in
  let reg1 = Registry.create ~result_cap:0 ~store:st () in
  ignore (run_lines reg1 traffic);
  let d_dyck = digest_of "dyck" and d_expr = digest_of "expr" in
  (* graft expr's *payload* under dyck's digest with a fresh frame: the
     header ends at the first blank line *)
  let expr_contents = read_file (entry_path st d_expr) in
  let payload_start =
    let rec go i =
      let j = String.index_from expr_contents i '\n' in
      if j = i then i + 1 else go (j + 1)
    in
    go 0
  in
  let expr_payload =
    String.sub expr_contents payload_start
      (String.length expr_contents - payload_start)
  in
  check_bool "grafted save accepted" true
    (Store.save st ~digest:d_dyck expr_payload);
  let reg2 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "responses identical over grafted entry" true
    (run_lines reg2 traffic = want);
  check_bool "invalid counted" true ((Store.stats st).Store.s_invalid >= 1)

(* --- concurrency ------------------------------------------------------------ *)

(* Two writers racing on the same digest: atomic rename makes
   last-writer-wins safe — afterwards the entry is one complete,
   validating bundle (never torn), and loads serve correct responses. *)
let test_write_race () =
  let st = open_store () in
  let cfg = Option.get (Builtin.find "dyck") in
  let digest = Registry.digest_cfg cfg in
  (* seed the entry once through the request path *)
  (let reg = Registry.create ~store:st () in
   let a, _ = Registry.get reg cfg in
   ignore (Registry.persist reg a));
  check_bool "seeded" true (Sys.file_exists (entry_path st digest));
  let racers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let reg = Registry.create ~store:st () in
            for _ = 1 to 10 do
              let a, _ = Registry.get reg cfg in
              ignore (Registry.persist reg a)
            done;
            true))
  in
  List.iter (fun d -> check_bool "racer ok" true (Domain.join d)) racers;
  (* the surviving entry is complete and valid *)
  let reg = Registry.create ~result_cap:0 ~store:st () in
  let want = reference_responses [ List.hd traffic ] in
  check_bool "entry valid after race" true
    (run_lines reg [ List.hd traffic ] = want);
  check_int "no invalids from the race" 0 (Store.stats st).Store.s_invalid

(* --- eviction --------------------------------------------------------------- *)

let test_eviction_by_count () =
  let st = open_store ~max_entries:2 () in
  let reg = Registry.create ~store:st () in
  let get name = ignore (Registry.get reg (Option.get (Builtin.find name))) in
  get "dyck";
  Unix.sleepf 0.02;
  get "expr";
  Unix.sleepf 0.02;
  get "ss";
  let s = Store.stats st in
  check_int "capped at two entries" 2 s.Store.s_entries;
  check_bool "evictions counted" true (s.Store.s_evictions >= 1);
  (* oldest (dyck) evicted; newest two remain *)
  check_bool "dyck gone" true
    (not (Sys.file_exists (entry_path st (digest_of "dyck"))));
  check_bool "ss present" true
    (Sys.file_exists (entry_path st (digest_of "ss")));
  (* an evicted entry is a plain miss-and-recompile on the next boot *)
  let want = reference_responses [ List.hd traffic ] in
  let reg2 = Registry.create ~result_cap:0 ~store:st () in
  check_bool "evicted entry recompiles identically" true
    (run_lines reg2 [ List.hd traffic ] = want)

let test_eviction_by_bytes () =
  let st = open_store ~max_bytes:1 () in
  let reg = Registry.create ~store:st () in
  ignore (Registry.get reg (Option.get (Builtin.find "dyck")));
  ignore (Registry.get reg (Option.get (Builtin.find "expr")));
  (* a 1-byte budget can hold at most... nothing; everything evicts *)
  let s = Store.stats st in
  check_int "byte cap enforced" 0 s.Store.s_entries;
  check_bool "evictions counted" true (s.Store.s_evictions >= 2)

(* --- preload ----------------------------------------------------------------- *)

let test_preload () =
  let st = open_store () in
  (* populate: every builtin *)
  let reg1 = Registry.create ~store:st () in
  List.iter
    (fun name -> ignore (Registry.get reg1 (Option.get (Builtin.find name))))
    Builtin.names;
  let n_builtin = List.length Builtin.names in
  check_int "all builtins stored"
    n_builtin (Store.stats st).Store.s_entries;
  (* warm boot: preload fills the in-memory LRU.  The first get on each
     entry reports the `Miss a storeless boot would have (store
     invisibility), the second a true `Hit *)
  let reg2 = Registry.create ~store:st () in
  let loaded = Registry.preload reg2 in
  check_int "preload loads every entry" n_builtin loaded;
  List.iter
    (fun name ->
      let _, first = Registry.get reg2 (Option.get (Builtin.find name)) in
      check_bool (name ^ ": first get reports the storeless miss") true
        (first = `Miss);
      let _, second = Registry.get reg2 (Option.get (Builtin.find name)) in
      check_bool (name ^ ": second get is an in-memory hit") true
        (second = `Hit))
    Builtin.names;
  (* responses over a freshly preloaded boot are byte-identical to a
     storeless cold boot — artifact hit/miss metadata included *)
  let reg_pre = Registry.create ~result_cap:0 ~store:st () in
  ignore (Registry.preload reg_pre);
  check_bool "preloaded responses identical to storeless" true
    (run_lines reg_pre traffic = reference_responses traffic);
  (* a limit caps it *)
  let reg3 = Registry.create ~store:st () in
  check_int "limited preload" 2 (Registry.preload ~limit:2 reg3)

let test_preload_respects_cap () =
  let st = open_store () in
  let reg1 = Registry.create ~store:st () in
  List.iter
    (fun name -> ignore (Registry.get reg1 (Option.get (Builtin.find name))))
    Builtin.names;
  let reg2 = Registry.create ~artifact_cap:3 ~store:st () in
  check_int "preload bounded by the artifact cap" 3 (Registry.preload reg2)

(* --- startup validation -------------------------------------------------------- *)

let test_open_rejects_file_root () =
  let path = Filename.temp_file "lambekd-store" ".notadir" in
  (match Store.open_root path with
  | Ok _ -> Alcotest.fail "opened a store rooted at a regular file"
  | Error msg -> check_bool "error is non-empty" true (String.length msg > 0));
  Sys.remove path

let test_open_creates_nested_root () =
  let dir =
    Filename.concat (temp_root ()) (Filename.concat "deep" "nested")
  in
  match Store.open_root dir with
  | Ok st ->
    check_bool "created" true (Sys.is_directory (Store.root st))
  | Error msg -> Alcotest.failf "open_root: %s" msg

(* stale-version files are garbage-collected at open, not decoded *)
let test_open_gc_stale () =
  let st = open_store () in
  let reg = Registry.create ~store:st () in
  ignore (Registry.get reg (Option.get (Builtin.find "dyck")));
  let digest = digest_of "dyck" in
  let path = entry_path st digest in
  let c = read_file path in
  let nl = String.index c '\n' in
  write_file path
    ("LAMBEKD-STORE 999\n" ^ String.sub c (nl + 1) (String.length c - nl - 1));
  (* reopening the same root GCs it silently *)
  (match Store.open_root (Store.root st) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "reopen: %s" msg);
  check_bool "stale entry removed" true (not (Sys.file_exists path))

(* --- the store is invisible: fuzz corpus under a populated store ------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Corpus case 30_store replays byte-identically to its committed golden
   through a store-armed registry in both store states: cold (writing)
   and warm (loading) — the goldens themselves are generated storeless,
   so this is a three-way identity. *)
let test_corpus_store_armed () =
  let dir = "data/fuzz" in
  let lines = read_lines (Filename.concat dir "30_store.ndjson") in
  let golden = read_lines (Filename.concat dir "30_store.expected") in
  let st = open_store () in
  let cold =
    Fuzz.reference (Registry.create ~result_cap:0 ~store:st ()) lines
  in
  let warm =
    Fuzz.reference (Registry.create ~result_cap:0 ~store:st ()) lines
  in
  check_int "cold store: response count" (List.length golden)
    (List.length cold);
  List.iteri
    (fun i (want, have) ->
      check_string (Fmt.str "cold store: response %d" i) want have)
    (List.combine golden cold);
  List.iteri
    (fun i (want, have) ->
      check_string (Fmt.str "warm store: response %d" i) want have)
    (List.combine golden warm);
  check_bool "warm replay actually loaded" true
    ((Store.stats st).Store.s_hits > 0)

let suite =
  [ Alcotest.test_case "store: artifact round trip across restarts" `Quick
      test_roundtrip;
    Alcotest.test_case "store: persisted weight tables survive" `Quick
      test_persist_weights;
    Alcotest.test_case "store: flipped payload byte falls back" `Quick
      test_corrupt_flip_byte;
    Alcotest.test_case "store: truncated entry falls back" `Quick
      test_corrupt_truncate;
    Alcotest.test_case "store: zero-length entry falls back" `Quick
      test_corrupt_zero_length;
    Alcotest.test_case "store: wrong-version entry falls back" `Quick
      test_corrupt_wrong_version;
    Alcotest.test_case "store: garbage header falls back" `Quick
      test_corrupt_garbage_header;
    Alcotest.test_case "store: checksum-valid undecodable payload" `Quick
      test_corrupt_valid_frame_bad_payload;
    Alcotest.test_case "store: grafted wrong-grammar payload rejected"
      `Quick test_corrupt_digest_mismatch;
    Alcotest.test_case "store: concurrent same-digest write race" `Quick
      test_write_race;
    Alcotest.test_case "store: eviction by entry count" `Quick
      test_eviction_by_count;
    Alcotest.test_case "store: eviction by byte budget" `Quick
      test_eviction_by_bytes;
    Alcotest.test_case "store: boot preload fills the LRU" `Quick
      test_preload;
    Alcotest.test_case "store: preload respects the artifact cap" `Quick
      test_preload_respects_cap;
    Alcotest.test_case "store: non-directory root rejected" `Quick
      test_open_rejects_file_root;
    Alcotest.test_case "store: nested root created" `Quick
      test_open_creates_nested_root;
    Alcotest.test_case "store: stale version GC'd at open" `Quick
      test_open_gc_stale;
    Alcotest.test_case "store: corpus 30_store byte-identical store-armed"
      `Quick test_corpus_store_armed ]
