(* Tests for the telemetry runtime: counters, spans, sinks, and the
   instrumentation contract of the Enum engines. *)

module T = Lambekd_telemetry
module Probe = T.Probe
module Sink = T.Sink
module Ev = T.Event
module E = Lambekd_grammar.Enum
module R = Lambekd_regex.Regex
module L = Lambekd_grammar.Language
module Dyck = Lambekd_cfg.Dyck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test must leave telemetry off; a helper that guarantees it. *)
let with_probe ?sink f =
  Probe.reset ();
  Probe.enable ?sink ();
  Fun.protect
    ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
    f

(* --- counters ---------------------------------------------------------- *)

let test_counters_concurrent () =
  (* counters are atomics: bumps from concurrent domains must not be
     lost (this is what lets the service scheduler share one probe) *)
  let c = Probe.counter "test.concurrent" in
  with_probe (fun () ->
      let per_domain = 10_000 in
      let worker () =
        for _ = 1 to per_domain do
          Probe.bump c
        done
      in
      let ds = List.init 4 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join ds;
      check_int "no lost bumps" (5 * per_domain) (Probe.value c))

let test_counters () =
  let a = Probe.counter "test.a" in
  let b = Probe.counter "test.b" in
  with_probe (fun () ->
      Probe.bump a;
      Probe.bump a;
      Probe.add b 40;
      check_int "bump twice" 2 (Probe.value a);
      check_int "add" 40 (Probe.value b);
      check_bool "same name, same counter" true
        (Probe.value (Probe.counter "test.a") = 2);
      let snapshot = Probe.counters () in
      check_bool "snapshot contains a" true
        (List.mem_assoc "test.a" snapshot);
      check_bool "snapshot sorted" true
        (let names = List.map fst snapshot in
         names = List.sort String.compare names);
      Probe.reset ();
      check_int "reset zeroes" 0 (Probe.value a);
      check_bool "reset empties snapshot" true
        (not (List.mem_assoc "test.a" (Probe.counters ()))))

let test_counters_disabled () =
  let c = Probe.counter "test.disabled" in
  Probe.disable ();
  Probe.reset ();
  Probe.bump c;
  Probe.add c 10;
  check_int "no counting while disabled" 0 (Probe.value c)

(* --- spans ------------------------------------------------------------- *)

let span_names events =
  List.filter_map
    (function Ev.Span { name; depth; _ } -> Some (name, depth) | _ -> None)
    events

let test_spans_nest () =
  let sink, events = Sink.memory () in
  with_probe ~sink (fun () ->
      let x =
        Probe.with_span "outer" (fun () ->
            Probe.with_span "inner" (fun () -> 21) * 2)
      in
      check_int "span body result" 42 x;
      (* inner closes first, one level deep *)
      Alcotest.(check (list (pair string int)))
        "nesting depths"
        [ ("inner", 1); ("outer", 0) ]
        (span_names (events ())))

let test_span_depth_restored_on_raise () =
  let sink, events = Sink.memory () in
  with_probe ~sink (fun () ->
      (try
         Probe.with_span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      Probe.with_span "after" (fun () -> ());
      match span_names (events ()) with
      | [ ("raiser", 0); ("after", 0) ] -> ()
      | other ->
        Alcotest.failf "unexpected spans: %a"
          Fmt.(Dump.list (Dump.pair string int))
          other)

let test_span_fields_lazy () =
  (* fields thunks must not run when telemetry is off *)
  Probe.disable ();
  let ran = ref false in
  let x =
    Probe.with_span "off"
      ~fields:(fun () ->
        ran := true;
        [])
      (fun () -> 7)
  in
  check_int "result passes through" 7 x;
  check_bool "fields not evaluated when disabled" false !ran

(* --- sinks ------------------------------------------------------------- *)

let test_null_sink_no_events () =
  (* with telemetry disabled, an instrumented engine emits nothing and
     counts nothing — the null-sink zero-overhead contract *)
  let sink, events = Sink.memory () in
  Probe.set_sink sink;
  Probe.disable ();
  Probe.reset ();
  ignore (E.parses Dyck.grammar "()");
  ignore (E.accepts Dyck.grammar "()");
  ignore (E.count_fast Dyck.grammar "()");
  check_int "no events recorded" 0 (List.length (events ()));
  check_bool "no counters recorded" true (Probe.counters () = []);
  Probe.set_sink Sink.null

let test_tee_and_flush () =
  let s1, e1 = Sink.memory () in
  let s2, e2 = Sink.memory () in
  with_probe ~sink:(Sink.tee [ s1; s2 ]) (fun () ->
      Probe.emit "point" [ ("k", Ev.Int 1) ];
      Probe.bump (Probe.counter "test.tee");
      Probe.flush ();
      check_int "both sinks saw point+counters" 2 (List.length (e1 ()));
      check_int "tee broadcasts" (List.length (e1 ())) (List.length (e2 ())))

let test_json_encoding () =
  Alcotest.(check string)
    "point json"
    {|{"ev":"point","name":"a \"b\"","fields":{"n":3,"ok":true,"s":"x\ny"}}|}
    (Ev.to_json
       (Ev.Point
          {
            name = "a \"b\"";
            fields = [ ("n", Ev.Int 3); ("ok", Ev.Bool true); ("s", Ev.Str "x\ny") ];
          }));
  Alcotest.(check string)
    "counters json"
    {|{"ev":"counters","fields":{"c":2}}|}
    (Ev.to_json (Ev.Counters [ ("c", 2) ]))

(* --- clock ------------------------------------------------------------- *)

let test_clock () =
  let t0 = T.Clock.now_ns () in
  let t1 = T.Clock.now_ns () in
  check_bool "monotone" true (t1 >= t0);
  let ns = T.Clock.time_ns ~budget_ns:1e5 (fun () -> ()) in
  check_bool "time_ns positive and finite" true (ns >= 0.0 && Float.is_finite ns)

(* --- instrumented engines ---------------------------------------------- *)

(* Memo traffic of [count_fast] on the Dyck grammar over "(())", by hand.

   D(i,j) abbreviates the Ref item for the Dyck definition on span [i,j).
   The forest engine prunes with D's character analysis (nullable,
   first = {'('}, last = {')'}), so a D item is visited only on the empty
   span or a span bracketed as ( … ).  Splitting D(0,4)'s bal production
   ( ⊗ D ⊗ ) ⊗ D leaves exactly one admissible split (D(1,3) then
   ) at 3, D(4,4)), and D(1,3)'s in turn leaves D(2,2), ) at 2, D(3,3).
   The visit order is D(0,4) [the query], D(1,3), D(2,2), D(3,3), D(4,4):
   5 distinct items, each visited once — 5 misses, 0 hits, for a word
   with exactly one parse.  (The seed engine visited 11 items with 3
   revisits; the difference is the split pruning, not a semantic change.) *)
let test_count_fast_memo_dyck () =
  let hit = Probe.counter "enum.memo_hit" in
  let miss = Probe.counter "enum.memo_miss" in
  with_probe (fun () ->
      check_int "one parse" 1 (E.count_fast Dyck.grammar "(())");
      check_int "memo hits on (())" 0 (Probe.value hit);
      check_int "memo misses on (())" 5 (Probe.value miss))

let test_accepts_fixpoint_counter () =
  let iters = Probe.counter "enum.fixpoint_iters" in
  with_probe (fun () ->
      check_bool "balanced" true (E.accepts Dyck.grammar "()()");
      check_bool "at least one fixpoint pass" true (Probe.value iters >= 1))

(* --- histograms and the metrics registry -------------------------------- *)

module H = T.Histogram
module Metrics = T.Metrics

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_histogram_buckets () =
  (* hand-computed assignments: unit buckets below 4, then four equal
     sub-buckets per octave — all integer arithmetic, so exact *)
  List.iter
    (fun (v, want) -> check_int (Fmt.str "bucket of %g" v) want (H.bucket_of_ns v))
    [ (0., 0); (1., 1); (2., 2); (3., 3); (4., 4); (5., 5); (7., 7);
      (8., 8); (9., 8) (* [8,10) *); (100., 22) (* [96,112) *);
      (1000., 35) (* [896,1024) *); (-3., 0); (Float.nan, 0) ];
  Alcotest.(check (float 0.)) "bucket 35 lower" 896. (H.bucket_lower 35);
  Alcotest.(check (float 0.)) "bucket 35 upper" 1024. (H.bucket_upper 35);
  (* the quantile error bound rests on this: width ≤ 25% of the lower
     bound for every finite bucket above 4 ns *)
  for i = 4 to H.nbuckets - 2 do
    let w = H.bucket_upper i -. H.bucket_lower i in
    check_bool
      (Fmt.str "bucket %d relative width" i)
      true
      (w <= (0.25 *. H.bucket_lower i) +. 1e-9)
  done;
  let h = H.create () in
  List.iter (H.observe h) [ 0.; 1.; 2.; 3.; 4.; 5.; 7.; 8.; 9.; 1000. ];
  let snap = H.snapshot h in
  check_int "count" 10 (H.count h);
  check_int "unit bucket 0" 1 snap.(0);
  check_int "8 and 9 share a bucket" 2 snap.(8);
  check_int "1000 in bucket 35" 1 snap.(35);
  Alcotest.(check (float 0.)) "exact sum" 1039. (H.sum_ns h)

let test_histogram_quantile () =
  let h = H.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (H.quantile h 0.5);
  for _ = 1 to 10 do
    H.observe h 100.
  done;
  (* 100 lands in [96,112): every quantile reports the upper edge, a
     12% overestimate — inside the 25% bound *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) (Fmt.str "p%g" (q *. 100.)) 112.
        (H.quantile h q))
    [ 0.5; 0.9; 0.99; 1.0 ];
  H.observe h 1000.;
  Alcotest.(check (float 0.)) "p99 follows the tail" 1024. (H.quantile h 0.99)

(* The edge cases: q is clamped into [0, 1] (NaN as 0), and the rank
   into [1, count] — out-of-range quantiles land on occupied buckets,
   never on an edge of the top bucket no observation ever reached. *)
let test_histogram_quantile_edges () =
  let chk name want got = Alcotest.(check (float 0.)) name want got in
  let h = H.create () in
  (* empty: every q answers 0, in range or not *)
  List.iter
    (fun q -> chk (Fmt.str "empty q=%g" q) 0. (H.quantile h q))
    [ 0.; 0.5; 1.; -1.; 2.; Float.nan ];
  (* a single observation: every q selects its bucket *)
  H.observe h 100.;
  List.iter
    (fun q -> chk (Fmt.str "single q=%g" q) 112. (H.quantile h q))
    [ 0.; 1e-9; 0.5; 1.; -3.; 7.; Float.nan ];
  (* two occupied buckets: q=0 pins the first, q=1 the last, and the
     clamps snap out-of-range q to those same answers *)
  H.observe h 1000.;
  chk "q=0 first occupied bucket" 112. (H.quantile h 0.);
  chk "q below the first rank" 112. (H.quantile h 1e-9);
  chk "q=1 last occupied bucket" 1024. (H.quantile h 1.);
  chk "q<0 clamps to 0" 112. (H.quantile h (-0.5));
  chk "q>1 clamps to 1" 1024. (H.quantile h 2.);
  chk "nan counts as 0" 112. (H.quantile h Float.nan)

let test_histogram_shard_merge () =
  (* the same multiset recorded serially and spread over 4 domains must
     merge to identical snapshots: shards sum elementwise *)
  let vals = List.init 2000 (fun i -> float_of_int (i * 7919 mod 50_000)) in
  let serial = H.create () in
  List.iter (H.observe serial) vals;
  let sharded = H.create () in
  let chunk k =
    List.filteri (fun i _ -> i mod 4 = k) vals
  in
  let ds =
    List.init 4 (fun k ->
        Domain.spawn (fun () -> List.iter (H.observe sharded) (chunk k)))
  in
  List.iter Domain.join ds;
  check_bool "snapshots identical" true
    (H.snapshot serial = H.snapshot sharded);
  check_int "counts identical" (H.count serial) (H.count sharded);
  Alcotest.(check (float 0.)) "sums identical" (H.sum_ns serial)
    (H.sum_ns sharded)

let test_metrics_registry () =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
  @@ fun () ->
  let h = Metrics.histogram "test_expose_ns" in
  check_bool "same name, same histogram" true
    (Metrics.histogram "test_expose_ns" == h);
  Metrics.observe h 100.;
  Metrics.observe h 1000.;
  Metrics.gauge "test_gauge" (fun () -> 3.5);
  Metrics.gauge "test_dead_gauge" (fun () -> failwith "scrape crash");
  let text = Metrics.expose () in
  List.iter
    (fun needle ->
      check_bool (Fmt.str "exposition has %S" needle) true
        (contains text needle))
    [ "# TYPE lambekd_test_expose_ns histogram";
      "lambekd_test_expose_ns_bucket{le=\"112\"} 1";
      "lambekd_test_expose_ns_bucket{le=\"+Inf\"} 2";
      "lambekd_test_expose_ns_sum 1100";
      "lambekd_test_expose_ns_count 2";
      "# TYPE lambekd_test_gauge gauge";
      "lambekd_test_gauge 3.5" ];
  check_bool "a raising gauge never kills a scrape" true
    (not (contains text "test_dead_gauge"));
  (* prom_name sanitization *)
  Alcotest.(check string) "prefix added" "lambekd_service_enqueued"
    (Metrics.prom_name "service.enqueued");
  Alcotest.(check string) "prefix kept" "lambekd_request_ns"
    (Metrics.prom_name "lambekd_request_ns");
  (* disabled = frozen *)
  Metrics.disable ();
  Metrics.observe h 5.;
  check_int "observe gated when disabled" 2 (H.count h)

(* satellite: sink swaps and enable/disable churn racing emitters on
   other domains — the sink holder is an Atomic, so churn can never
   tear a read or wedge an emitter *)
let test_probe_churn_under_domains () =
  Probe.reset ();
  let c = Probe.counter "test.churn" in
  let stop = Atomic.make false in
  let emitters =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Probe.bump c;
              Probe.with_span "churn.span" (fun () ->
                  Probe.emit "churn.point" [ ("k", Ev.Int 1) ])
            done))
  in
  for _ = 1 to 200 do
    let sink, _ = Sink.memory () in
    Probe.enable ~sink:(Sink.synchronized sink) ();
    Probe.set_sink Sink.null;
    Probe.disable ()
  done;
  Atomic.set stop true;
  List.iter Domain.join emitters;
  Probe.disable ();
  Probe.reset ();
  check_bool "survived enable/disable churn" true true

(* satellite: control characters, quotes and astral-plane names must
   round-trip through the event JSON encoder — checked with the service
   JSON parser, the same decoder the wire protocol uses *)
let test_event_escaping_roundtrip () =
  let module J = Lambekd_service.Json in
  List.iter
    (fun name ->
      let json = Ev.to_json (Ev.Point { name; fields = [ ("s", Ev.Str name) ] }) in
      match J.parse json with
      | Error e -> Alcotest.failf "unparseable event %s: %s" json e
      | Ok j ->
        Alcotest.(check (option string))
          (Fmt.str "name %S round-trips" name)
          (Some name)
          (Option.bind (J.mem "name" j) J.str);
        Alcotest.(check (option string))
          (Fmt.str "field %S round-trips" name)
          (Some name)
          (Option.bind (J.mem "fields" j) (fun f ->
               Option.bind (J.mem "s" f) J.str)))
    [ "line\nbreak"; "tab\there"; {|a "quoted" span|}; "back\\slash";
      "astral \xf0\x9f\x98\x80 and \xce\xb1 and \xf0\x9d\x84\x9e";
      "ctl\x01\x1f"; "cr\rlf" ]

(* --- satellite: the Enum interface contract ----------------------------- *)

let abc = [ 'a'; 'b'; 'c' ]

let arb_regex =
  QCheck.make
    ~print:(fun r -> R.to_string r)
    QCheck.Gen.(
      map
        (fun n ->
          let rng = Random.State.make [| n |] in
          R.random ~chars:abc ~size:8 rng)
        int)

let words3 = L.words abc ~max_len:3

(* enum.mli: count_fast "agrees with count … under the same ε-acyclicity
   proviso", and accepts is exact membership.  Locked in on random
   regex-derived grammars (star-normalized, hence ε-acyclic). *)
let prop_count_agrees =
  QCheck.Test.make ~name:"Enum.count = Enum.count_fast on regex grammars"
    ~count:40 arb_regex (fun r ->
      let g = R.to_grammar r in
      List.for_all (fun w -> E.count g w = E.count_fast g w) words3)

let prop_accepts_iff_parses =
  QCheck.Test.make ~name:"Enum.accepts ⇔ Enum.parses <> [] on regex grammars"
    ~count:40 arb_regex (fun r ->
      let g = R.to_grammar r in
      List.for_all
        (fun w -> Bool.equal (E.accepts g w) (E.parses g w <> []))
        words3)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_count_agrees; prop_accepts_iff_parses ]

let suite =
  [ ("counters bump/add/reset", `Quick, test_counters);
    ("counters domain-safe", `Quick, test_counters_concurrent);
    ("counters frozen when disabled", `Quick, test_counters_disabled);
    ("spans nest", `Quick, test_spans_nest);
    ("span depth restored on raise", `Quick, test_span_depth_restored_on_raise);
    ("span fields lazy when disabled", `Quick, test_span_fields_lazy);
    ("null sink: no events, no counts", `Quick, test_null_sink_no_events);
    ("tee and flush", `Quick, test_tee_and_flush);
    ("json-lines encoding", `Quick, test_json_encoding);
    ("clock", `Quick, test_clock);
    ("count_fast memo traffic on Dyck", `Quick, test_count_fast_memo_dyck);
    ("accepts fixpoint counter", `Quick, test_accepts_fixpoint_counter);
    ("histogram bucket assignment", `Quick, test_histogram_buckets);
    ("histogram quantiles", `Quick, test_histogram_quantile);
    ("histogram quantile edge cases", `Quick, test_histogram_quantile_edges);
    ("histogram shard merge deterministic", `Quick, test_histogram_shard_merge);
    ("metrics registry and exposition", `Quick, test_metrics_registry);
    ("probe churn under domains", `Quick, test_probe_churn_under_domains);
    ("event escaping round-trips", `Quick, test_event_escaping_roundtrip) ]
  @ qcheck_tests
