(* Tests for the telemetry runtime: counters, spans, sinks, and the
   instrumentation contract of the Enum engines. *)

module T = Lambekd_telemetry
module Probe = T.Probe
module Sink = T.Sink
module Ev = T.Event
module E = Lambekd_grammar.Enum
module R = Lambekd_regex.Regex
module L = Lambekd_grammar.Language
module Dyck = Lambekd_cfg.Dyck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test must leave telemetry off; a helper that guarantees it. *)
let with_probe ?sink f =
  Probe.reset ();
  Probe.enable ?sink ();
  Fun.protect
    ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
    f

(* --- counters ---------------------------------------------------------- *)

let test_counters_concurrent () =
  (* counters are atomics: bumps from concurrent domains must not be
     lost (this is what lets the service scheduler share one probe) *)
  let c = Probe.counter "test.concurrent" in
  with_probe (fun () ->
      let per_domain = 10_000 in
      let worker () =
        for _ = 1 to per_domain do
          Probe.bump c
        done
      in
      let ds = List.init 4 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join ds;
      check_int "no lost bumps" (5 * per_domain) (Probe.value c))

let test_counters () =
  let a = Probe.counter "test.a" in
  let b = Probe.counter "test.b" in
  with_probe (fun () ->
      Probe.bump a;
      Probe.bump a;
      Probe.add b 40;
      check_int "bump twice" 2 (Probe.value a);
      check_int "add" 40 (Probe.value b);
      check_bool "same name, same counter" true
        (Probe.value (Probe.counter "test.a") = 2);
      let snapshot = Probe.counters () in
      check_bool "snapshot contains a" true
        (List.mem_assoc "test.a" snapshot);
      check_bool "snapshot sorted" true
        (let names = List.map fst snapshot in
         names = List.sort String.compare names);
      Probe.reset ();
      check_int "reset zeroes" 0 (Probe.value a);
      check_bool "reset empties snapshot" true
        (not (List.mem_assoc "test.a" (Probe.counters ()))))

let test_counters_disabled () =
  let c = Probe.counter "test.disabled" in
  Probe.disable ();
  Probe.reset ();
  Probe.bump c;
  Probe.add c 10;
  check_int "no counting while disabled" 0 (Probe.value c)

(* --- spans ------------------------------------------------------------- *)

let span_names events =
  List.filter_map
    (function Ev.Span { name; depth; _ } -> Some (name, depth) | _ -> None)
    events

let test_spans_nest () =
  let sink, events = Sink.memory () in
  with_probe ~sink (fun () ->
      let x =
        Probe.with_span "outer" (fun () ->
            Probe.with_span "inner" (fun () -> 21) * 2)
      in
      check_int "span body result" 42 x;
      (* inner closes first, one level deep *)
      Alcotest.(check (list (pair string int)))
        "nesting depths"
        [ ("inner", 1); ("outer", 0) ]
        (span_names (events ())))

let test_span_depth_restored_on_raise () =
  let sink, events = Sink.memory () in
  with_probe ~sink (fun () ->
      (try
         Probe.with_span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      Probe.with_span "after" (fun () -> ());
      match span_names (events ()) with
      | [ ("raiser", 0); ("after", 0) ] -> ()
      | other ->
        Alcotest.failf "unexpected spans: %a"
          Fmt.(Dump.list (Dump.pair string int))
          other)

let test_span_fields_lazy () =
  (* fields thunks must not run when telemetry is off *)
  Probe.disable ();
  let ran = ref false in
  let x =
    Probe.with_span "off"
      ~fields:(fun () ->
        ran := true;
        [])
      (fun () -> 7)
  in
  check_int "result passes through" 7 x;
  check_bool "fields not evaluated when disabled" false !ran

(* --- sinks ------------------------------------------------------------- *)

let test_null_sink_no_events () =
  (* with telemetry disabled, an instrumented engine emits nothing and
     counts nothing — the null-sink zero-overhead contract *)
  let sink, events = Sink.memory () in
  Probe.set_sink sink;
  Probe.disable ();
  Probe.reset ();
  ignore (E.parses Dyck.grammar "()");
  ignore (E.accepts Dyck.grammar "()");
  ignore (E.count_fast Dyck.grammar "()");
  check_int "no events recorded" 0 (List.length (events ()));
  check_bool "no counters recorded" true (Probe.counters () = []);
  Probe.set_sink Sink.null

let test_tee_and_flush () =
  let s1, e1 = Sink.memory () in
  let s2, e2 = Sink.memory () in
  with_probe ~sink:(Sink.tee [ s1; s2 ]) (fun () ->
      Probe.emit "point" [ ("k", Ev.Int 1) ];
      Probe.bump (Probe.counter "test.tee");
      Probe.flush ();
      check_int "both sinks saw point+counters" 2 (List.length (e1 ()));
      check_int "tee broadcasts" (List.length (e1 ())) (List.length (e2 ())))

let test_json_encoding () =
  Alcotest.(check string)
    "point json"
    {|{"ev":"point","name":"a \"b\"","fields":{"n":3,"ok":true,"s":"x\ny"}}|}
    (Ev.to_json
       (Ev.Point
          {
            name = "a \"b\"";
            fields = [ ("n", Ev.Int 3); ("ok", Ev.Bool true); ("s", Ev.Str "x\ny") ];
          }));
  Alcotest.(check string)
    "counters json"
    {|{"ev":"counters","fields":{"c":2}}|}
    (Ev.to_json (Ev.Counters [ ("c", 2) ]))

(* --- clock ------------------------------------------------------------- *)

let test_clock () =
  let t0 = T.Clock.now_ns () in
  let t1 = T.Clock.now_ns () in
  check_bool "monotone" true (t1 >= t0);
  let ns = T.Clock.time_ns ~budget_ns:1e5 (fun () -> ()) in
  check_bool "time_ns positive and finite" true (ns >= 0.0 && Float.is_finite ns)

(* --- instrumented engines ---------------------------------------------- *)

(* Memo traffic of [count_fast] on the Dyck grammar over "(())", by hand.

   D(i,j) abbreviates the Ref item for the Dyck definition on span [i,j).
   The forest engine prunes with D's character analysis (nullable,
   first = {'('}, last = {')'}), so a D item is visited only on the empty
   span or a span bracketed as ( … ).  Splitting D(0,4)'s bal production
   ( ⊗ D ⊗ ) ⊗ D leaves exactly one admissible split (D(1,3) then
   ) at 3, D(4,4)), and D(1,3)'s in turn leaves D(2,2), ) at 2, D(3,3).
   The visit order is D(0,4) [the query], D(1,3), D(2,2), D(3,3), D(4,4):
   5 distinct items, each visited once — 5 misses, 0 hits, for a word
   with exactly one parse.  (The seed engine visited 11 items with 3
   revisits; the difference is the split pruning, not a semantic change.) *)
let test_count_fast_memo_dyck () =
  let hit = Probe.counter "enum.memo_hit" in
  let miss = Probe.counter "enum.memo_miss" in
  with_probe (fun () ->
      check_int "one parse" 1 (E.count_fast Dyck.grammar "(())");
      check_int "memo hits on (())" 0 (Probe.value hit);
      check_int "memo misses on (())" 5 (Probe.value miss))

let test_accepts_fixpoint_counter () =
  let iters = Probe.counter "enum.fixpoint_iters" in
  with_probe (fun () ->
      check_bool "balanced" true (E.accepts Dyck.grammar "()()");
      check_bool "at least one fixpoint pass" true (Probe.value iters >= 1))

(* --- satellite: the Enum interface contract ----------------------------- *)

let abc = [ 'a'; 'b'; 'c' ]

let arb_regex =
  QCheck.make
    ~print:(fun r -> R.to_string r)
    QCheck.Gen.(
      map
        (fun n ->
          let rng = Random.State.make [| n |] in
          R.random ~chars:abc ~size:8 rng)
        int)

let words3 = L.words abc ~max_len:3

(* enum.mli: count_fast "agrees with count … under the same ε-acyclicity
   proviso", and accepts is exact membership.  Locked in on random
   regex-derived grammars (star-normalized, hence ε-acyclic). *)
let prop_count_agrees =
  QCheck.Test.make ~name:"Enum.count = Enum.count_fast on regex grammars"
    ~count:40 arb_regex (fun r ->
      let g = R.to_grammar r in
      List.for_all (fun w -> E.count g w = E.count_fast g w) words3)

let prop_accepts_iff_parses =
  QCheck.Test.make ~name:"Enum.accepts ⇔ Enum.parses <> [] on regex grammars"
    ~count:40 arb_regex (fun r ->
      let g = R.to_grammar r in
      List.for_all
        (fun w -> Bool.equal (E.accepts g w) (E.parses g w <> []))
        words3)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_count_agrees; prop_accepts_iff_parses ]

let suite =
  [ ("counters bump/add/reset", `Quick, test_counters);
    ("counters domain-safe", `Quick, test_counters_concurrent);
    ("counters frozen when disabled", `Quick, test_counters_disabled);
    ("spans nest", `Quick, test_spans_nest);
    ("span depth restored on raise", `Quick, test_span_depth_restored_on_raise);
    ("span fields lazy when disabled", `Quick, test_span_fields_lazy);
    ("null sink: no events, no counts", `Quick, test_null_sink_no_events);
    ("tee and flush", `Quick, test_tee_and_flush);
    ("json-lines encoding", `Quick, test_json_encoding);
    ("clock", `Quick, test_clock);
    ("count_fast memo traffic on Dyck", `Quick, test_count_fast_memo_dyck);
    ("accepts fixpoint counter", `Quick, test_accepts_fixpoint_counter) ]
  @ qcheck_tests
