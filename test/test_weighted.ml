(* Tests for the weighted-hypergraph subsystem: semiring laws, the
   counting-semiring differential against [Forest.count] on random
   grammars, Viterbi / lazy k-best (ordering, determinism, hand
   oracles), inside/outside consistency, PCFG weight-table validation,
   terminal interning for [Enum.accepts], and a 4-domain stress test
   asserting ranked output is byte-identical to serial — clean and under
   a committed fault schedule. *)

module W = Lambekd_weighted
module S = W.Semiring
module H = W.Hypergraph
module Weights = W.Weights
module Cfg = Lambekd_cfg.Cfg
module Grammar = Lambekd_grammar.Grammar
module Forest = Lambekd_grammar.Forest
module Enum = Lambekd_grammar.Enum
module Ptree = Lambekd_grammar.Ptree
module Probe = Lambekd_telemetry.Probe
module Sv = Lambekd_service
module Protocol = Sv.Protocol
module Registry = Sv.Registry
module Exec = Sv.Exec
module Scheduler = Sv.Scheduler
module Builtin = Sv.Builtin
module Fault = Sv.Fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let check_close msg expected got =
  if not (Float.abs (expected -. got) <= 1e-9 *. (1. +. Float.abs expected))
  then Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

(* --- semiring laws -------------------------------------------------------- *)

(* The integer semirings satisfy the laws exactly (Counting in the
   saturating sense); the float semirings only up to rounding —
   [Float.max] is exact, but [+.] re-association and log-sum-exp are
   not, so those are checked with a relative tolerance. *)
let laws_exact (type w) (module M : S.S with type t = w) name samples =
  List.iter
    (fun (a, b, c) ->
      let chk msg x y =
        if not (M.equal x y) then
          Alcotest.failf "%s %s: %s <> %s" name msg (M.to_string x)
            (M.to_string y)
      in
      chk "plus assoc" (M.plus (M.plus a b) c) (M.plus a (M.plus b c));
      chk "plus comm" (M.plus a b) (M.plus b a);
      chk "plus zero" (M.plus a M.zero) a;
      chk "times assoc" (M.times (M.times a b) c) (M.times a (M.times b c));
      chk "times one" (M.times a M.one) a;
      chk "one times" (M.times M.one a) a;
      chk "zero annihilates" (M.times a M.zero) M.zero;
      chk "distrib" (M.times a (M.plus b c))
        (M.plus (M.times a b) (M.times a c)))
    samples

let laws_approx (type w) (module M : S.S with type t = w)
    (to_float : w -> float) name samples =
  List.iter
    (fun (a, b, c) ->
      let chk msg x y =
        let x = to_float x and y = to_float y in
        let same =
          (Float.is_finite x && Float.is_finite y
          && Float.abs (x -. y) <= 1e-9 *. (1. +. Float.abs x))
          || (not (Float.is_finite x)) && x = y
        in
        if not same then
          Alcotest.failf "%s %s: %.17g <> %.17g" name msg x y
      in
      chk "plus assoc" (M.plus (M.plus a b) c) (M.plus a (M.plus b c));
      chk "plus comm" (M.plus a b) (M.plus b a);
      chk "plus zero" (M.plus a M.zero) a;
      chk "times assoc" (M.times (M.times a b) c) (M.times a (M.times b c));
      chk "times one" (M.times a M.one) a;
      chk "zero annihilates" (M.times a M.zero) M.zero;
      chk "distrib" (M.times a (M.plus b c))
        (M.plus (M.times a b) (M.times a c)))
    samples

let test_semiring_laws () =
  let rng = Random.State.make [| 0xbeef |] in
  let triples gen = List.init 300 (fun _ -> (gen (), gen (), gen ())) in
  laws_exact (module S.Boolean) "bool"
    (triples (fun () -> Random.State.bool rng));
  (* mix small counts with values near the clamp so saturation paths run *)
  let count () =
    match Random.State.int rng 5 with
    | 0 -> 0
    | 1 -> max_int - Random.State.int rng 3
    | 2 -> max_int / (1 + Random.State.int rng 4)
    | _ -> Random.State.int rng 1000
  in
  laws_exact (module S.Counting) "counting" (triples count);
  let logp () = -.Float.of_int (Random.State.int rng 40) /. 3. in
  laws_approx (module S.Viterbi) Fun.id "viterbi" (triples logp);
  laws_approx (module S.Inside) Fun.id "inside" (triples logp);
  check_bool "counting saturates" true
    (S.saturated S.Counting.(times (times max_int 2) 2));
  check_close "log_add oracle" (Float.log 3.)
    (S.log_add (Float.log 1.) (Float.log 2.));
  check_close "log_add neg_infinity" (Float.log 2.)
    (S.log_add Float.neg_infinity (Float.log 2.))

(* --- random-grammar differentials ---------------------------------------- *)

(* Same shape as the registry differential's generator: every
   nonterminal productive by construction, terminals drawn from {a,b}
   so a word with a 'c' exercises the interning cutoff. *)
let random_cfg rng =
  let nts = 1 + Random.State.int rng 3 in
  let nt i = Fmt.str "N%d" i in
  let sym () =
    match Random.State.int rng 4 with
    | 0 -> Cfg.T 'a'
    | 1 -> Cfg.T 'b'
    | _ -> Cfg.N (nt (Random.State.int rng nts))
  in
  let productions =
    List.concat_map
      (fun i ->
        let prods = 1 + Random.State.int rng 2 in
        List.init prods (fun _ ->
            let len = Random.State.int rng 4 in
            (nt i, List.init len (fun _ -> sym ()))))
      (List.init nts Fun.id)
  in
  Cfg.make ~start:(nt 0) ~productions

let random_word ?(alphabet = "ab") rng =
  let n = String.length alphabet in
  String.init (Random.State.int rng 6) (fun _ ->
      alphabet.[Random.State.int rng n])

(* The built-in differential oracle: the counting-semiring inside weight
   at the root must equal [Forest.count] bit for bit, and the hypergraph
   accepts exactly when membership holds.  200 random grammars, several
   words each, seeded through qcheck so failures shrink to a seed. *)
let qcheck_counting_differential =
  QCheck.Test.make ~name:"counting inside = Forest.count on random grammars"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0xc0de; seed |] in
      let cfg = random_cfg rng in
      let g = Cfg.to_grammar cfg in
      List.for_all
        (fun w ->
          let h = H.build g w in
          H.count h = Forest.count_string g w
          && H.accepts h = Enum.accepts g w)
        (List.init 4 (fun _ -> random_word rng)))

let qcheck_kbest_properties =
  QCheck.Test.make
    ~name:"kbest: non-increasing, k=1 = viterbi, length = min k count"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0x6b65; seed |] in
      let cfg = random_cfg rng in
      let g = Cfg.to_grammar cfg in
      let wt = Weights.uniform cfg in
      let weight = Weights.edge_weight wt in
      List.for_all
        (fun w ->
          let h = H.build g w in
          let total = H.count h in
          let k = 1 + Random.State.int rng 7 in
          let ds = H.kbest ~weight ~k h in
          let rec non_incr = function
            | ({ H.logw = a; _ } : H.derivation)
              :: ({ H.logw = b; _ } as d2)
              :: rest ->
              a >= b && non_incr (d2 :: rest)
            | _ -> true
          in
          let len_ok =
            if S.saturated total then List.length ds <= k
            else List.length ds = min k total
          in
          let head_ok =
            match (H.viterbi ~weight h, ds) with
            | None, [] -> true
            | Some v, d :: _ -> Float.equal v.H.logw d.H.logw
            | _ -> false
          in
          let yields_ok =
            List.for_all (fun d -> String.equal (Ptree.yield d.H.tree) w) ds
          in
          len_ok && non_incr ds && head_ok && yields_ok)
        (List.init 3 (fun _ -> random_word rng)))

let qcheck_intern_transparent =
  QCheck.Test.make
    ~name:"Enum.accepts with interning = without, cutoff included"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0x17e2; seed |] in
      let cfg = random_cfg rng in
      let g = Cfg.to_grammar cfg in
      let it = Enum.intern g in
      List.for_all
        (* 'c' is outside every generated grammar's alphabet, so some
           words take the early-cutoff path *)
          (fun w -> Enum.accepts g w = Enum.accepts ~intern:it g w)
        (List.init 5 (fun _ -> random_word ~alphabet:"abc" rng)))

(* --- hand oracles: ss with P(S->SS)=0.4, P(S->a)=0.6 ---------------------- *)

let ss_cfg () = (Option.get (Builtin.find "ss") : Cfg.t)

let ss_weights () =
  match Weights.normalize (ss_cfg ()) [| 0.4; 0.6 |] with
  | Ok wt -> wt
  | Error e -> Alcotest.fail e

let test_mass_oracle () =
  let cfg = ss_cfg () in
  let g = Cfg.to_grammar cfg in
  let wt = ss_weights () in
  let weight = Weights.edge_weight wt in
  let mass w =
    Float.exp (H.inside_root (module S.Inside) ~weight (H.build g w))
  in
  (* a^n has Catalan(n-1) parses, each using n-1 branch rules and n leaf
     rules: mass(a^n) = C(n-1) · 0.4^(n-1) · 0.6^n *)
  check_close "mass a" 0.6 (mass "a");
  check_close "mass aa" 0.144 (mass "aa");
  check_close "mass aaa" 0.06912 (mass "aaa");
  check_close "mass aaaa" (5. *. (0.4 ** 3.) *. (0.6 ** 4.)) (mass "aaaa");
  check_close "rejected mass is zero" 0. (mass "b");
  (* the boolean sweep is membership *)
  check_bool "boolean inside accepts" true
    (H.inside_root (module S.Boolean) ~weight:(fun _ -> true) (H.build g "aaa"));
  check_bool "boolean inside rejects" false
    (H.inside_root (module S.Boolean) ~weight:(fun _ -> true) (H.build g "b"))

let test_kbest_oracle () =
  let cfg = ss_cfg () in
  let g = Cfg.to_grammar cfg in
  let weight = Weights.edge_weight (ss_weights ()) in
  let h = H.build g "aaaa" in
  check_int "a^4 has Catalan(3) = 5 parses" 5 (H.count h);
  let ds = H.kbest ~weight ~k:10 h in
  check_int "kbest exhausts at 5" 5 (List.length ds);
  (* every derivation of a^4 uses 3 branch and 4 leaf applications *)
  let expected = (3. *. Float.log 0.4) +. (4. *. Float.log 0.6) in
  List.iter (fun d -> check_close "uniform tie weight" expected d.H.logw) ds;
  (* ranked output is deterministic: ties broken on item order *)
  let render ds =
    String.concat "\n"
      (List.map (fun d -> Ptree.to_string d.H.tree) ds)
  in
  check_string "tie order stable across rebuilds" (render ds)
    (render (H.kbest ~weight ~k:10 (H.build g "aaaa")));
  let trees = List.map (fun d -> Ptree.to_string d.H.tree) ds in
  check_int "derivations distinct" 5
    (List.length (List.sort_uniq String.compare trees));
  List.iter
    (fun d -> check_string "yield" "aaaa" (Ptree.yield d.H.tree))
    ds;
  match H.viterbi ~weight h with
  | None -> Alcotest.fail "viterbi rejected an accepted input"
  | Some v ->
    check_string "viterbi = kbest head" (Ptree.to_string v.H.tree)
      (Ptree.to_string (List.hd ds).H.tree)

let test_inside_outside_consistency () =
  let rng = Random.State.make [| 0x10ca1 |] in
  for _ = 1 to 50 do
    let cfg = random_cfg rng in
    let g = Cfg.to_grammar cfg in
    let w = random_word rng in
    let h = H.build g w in
    if H.accepts h then begin
      let one _ = 1 in
      let ins = H.inside (module S.Counting) ~weight:one h in
      let out = H.outside (module S.Counting) ~weight:one ~inside:ins h in
      let root = H.root h in
      let total = ins.(root) in
      check_int "outside(root) = one" 1 out.(root);
      check_int "inside(root) = count" (H.count h) total;
      (* through-count: derivations containing node v; a node is on at
         most every derivation, and the root is on all of them *)
      if not (S.saturated total) then
        for v = 0 to H.nodes h - 1 do
          let through = S.Counting.times ins.(v) out.(v) in
          if through > total then
            Alcotest.failf "node %d: through %d > total %d" v through total
        done
    end
  done

(* --- weight tables -------------------------------------------------------- *)

let test_weights_validation () =
  let cfg = ss_cfg () in
  let err w =
    match Weights.normalize cfg w with
    | Ok _ -> Alcotest.fail "expected validation error"
    | Error e -> e
  in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  check_bool "arity error names the expected count" true
    (contains ~affix:"2" (err [| 1. |]));
  check_bool "negative weight rejected" true
    (String.length (err [| -1.; 1. |]) > 0);
  check_bool "nan rejected" true (String.length (err [| Float.nan; 1. |]) > 0);
  check_bool "infinite rejected" true
    (String.length (err [| Float.infinity; 1. |]) > 0);
  check_bool "zero-mass lhs rejected" true
    (String.length (err [| 0.; 0. |]) > 0);
  (* normalization is per-LHS: scaling a table leaves it unchanged *)
  let t1 = Result.get_ok (Weights.normalize cfg [| 1.; 3. |]) in
  let t2 = Result.get_ok (Weights.normalize cfg [| 2.; 6. |]) in
  check_string "scaled tables share a digest" (Weights.digest t1)
    (Weights.digest t2);
  let t3 = Result.get_ok (Weights.normalize cfg [| 3.; 1. |]) in
  check_bool "distinct tables get distinct digests" false
    (String.equal (Weights.digest t1) (Weights.digest t3));
  check_int "table covers every production" 2 (Weights.n t1);
  check_close "logp normalized" (Float.log 0.25) (Weights.logp t1 0);
  let u = Weights.uniform cfg in
  check_close "uniform logp" (Float.log 0.5) (Weights.logp u 0)

(* --- terminal interning --------------------------------------------------- *)

let test_intern_basic () =
  let g = Cfg.to_grammar (ss_cfg ()) in
  let it = Enum.intern g in
  check_bool "ss alphabet is complete" true (Enum.intern_exact it);
  check_int "one terminal class" 1 (Enum.intern_classes it);
  check_bool "member" true (Enum.accepts ~intern:it g "aaa");
  check_bool "non-member in alphabet" true (Enum.accepts ~intern:it g "a");
  check_bool "out-of-alphabet rejected" false (Enum.accepts ~intern:it g "aab");
  (* Top consumes arbitrary bytes: the alphabet cannot be complete *)
  let topg = Grammar.Seq (Grammar.Top, Grammar.Chr 'a') in
  let itop = Enum.intern topg in
  check_bool "Top defeats exactness" false (Enum.intern_exact itop);
  check_bool "inexact interning still answers" true
    (Enum.accepts ~intern:itop topg "xa")

let test_intern_cutoff_probe () =
  let was_enabled = Probe.enabled () in
  Probe.enable ();
  let c = Probe.counter "enum.intern_cutoff" in
  let before = Probe.value c in
  let g = Cfg.to_grammar (ss_cfg ()) in
  let it = Enum.intern g in
  check_bool "cut" false (Enum.accepts ~intern:it g "aaxa");
  check_int "cutoff counted" (before + 1) (Probe.value c);
  (* in-alphabet traffic never takes the cutoff *)
  check_bool "no cut" true (Enum.accepts ~intern:it g "aa");
  check_int "counter unchanged" (before + 1) (Probe.value c);
  (* the service path wires the artifact's table in *)
  let a = Registry.compile (ss_cfg ()) in
  check_bool "artifact interning is exact" true
    (Enum.intern_exact a.Registry.intern);
  if not was_enabled then Probe.disable ()

(* --- service wire --------------------------------------------------------- *)

let run_line ?(reg = Registry.create ()) line =
  match Protocol.parse_request line with
  | Error e -> Alcotest.fail e
  | Ok req -> Exec.run reg req

let test_wire_kbest_and_mass () =
  let reg = Registry.create () in
  let r =
    run_line ~reg
      {|{"id":"k","grammar":"ss","input":"aaaa","query":"parse","kbest":5}|}
  in
  check_string "engine" "kbest" r.Protocol.engine_used;
  (match r.Protocol.outcome with
  | Ok (Protocol.Ranked { parses }) ->
    check_int "five ranked parses" 5 (List.length parses);
    let rec non_incr = function
      | (a, _) :: ((b, _) :: _ as rest) -> a >= b && non_incr rest
      | _ -> true
    in
    check_bool "ranked non-increasing" true (non_incr parses)
  | _ -> Alcotest.fail "expected a ranked verdict");
  let m =
    run_line ~reg
      {|{"id":"m","grammar":"ss","input":"aa","query":"mass","weights":[0.4,0.6]}|}
  in
  (match m.Protocol.outcome with
  | Ok (Protocol.Mass { log_mass }) ->
    check_close "mass aa" 0.144 (Float.exp log_mass)
  | _ -> Alcotest.fail "expected a mass verdict");
  let rej =
    run_line ~reg {|{"id":"r","grammar":"ss","input":"b","query":"mass"}|}
  in
  (match rej.Protocol.outcome with
  | Ok (Protocol.Mass { log_mass }) ->
    check_close "rejected mass" 0. (Float.exp log_mass)
  | _ -> Alcotest.fail "expected a mass verdict");
  (* malformed weights are a bad request, not a crash *)
  let bad =
    run_line ~reg
      {|{"id":"b","grammar":"ss","input":"a","query":"parse","kbest":2,"weights":[1]}|}
  in
  (match bad.Protocol.outcome with
  | Error (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "expected bad_request on arity mismatch");
  (* the per-engine latency histograms reach the metrics endpoint *)
  let module Metrics = Lambekd_telemetry.Metrics in
  let was_on = Metrics.enabled () in
  Metrics.enable ();
  ignore
    (run_line ~reg
       {|{"id":"h","grammar":"ss","input":"aa","query":"parse","kbest":2}|});
  ignore (run_line ~reg {|{"id":"h2","grammar":"ss","input":"aa","query":"mass"}|});
  let exposition = Metrics.expose () in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  check_bool "kbest histogram exposed" true
    (contains ~affix:"lambekd_request_ns_kbest" exposition);
  check_bool "mass histogram exposed" true
    (contains ~affix:"lambekd_request_ns_mass" exposition);
  if not was_on then Metrics.disable ()

(* --- 4-domain ranked-output stress ---------------------------------------- *)

let with_schedule s f =
  match Fault.parse s with
  | Error e -> Alcotest.failf "schedule %S: %s" s e
  | Ok cfg ->
    Fault.install cfg;
    Fun.protect ~finally:Fault.clear f

let ranked_requests () =
  List.filter_map
    (fun line ->
      match Protocol.parse_request line with
      | Ok r -> Some r
      | Error e -> Alcotest.fail e)
    (List.concat
       (List.init 30 (fun i ->
            let ss_w = String.make (1 + (i mod 8)) 'a' in
            let expr_in =
              "n" ^ String.concat "" (List.init (i mod 5) (fun _ -> "+n"))
            in
            [ Fmt.str
                {|{"id":"k%d","grammar":"ss","input":"%s","query":"parse","kbest":%d}|}
                i ss_w
                (1 + (i mod 6));
              Fmt.str
                {|{"id":"w%d","grammar":"expr_plain","input":"%s","query":"parse","kbest":3,"weights":[%s]}|}
                i expr_in
                (match i mod 3 with
                | 0 -> "1,1,1,1"
                | 1 -> "0.7,0.3,0.8,0.2"
                | _ -> "2,1,3,4");
              Fmt.str
                {|{"id":"s%d","grammar":"ss","input":"%s","query":"mass"%s}|}
                i
                (if i mod 7 = 0 then "b" else ss_w)
                (if i mod 2 = 0 then {|,"weights":[0.3,0.7]|} else "") ])))

(* Ranked output must be deterministic: weights go through the same
   normalized table, ties break on item order, floats render with a
   fixed format — so the 4-domain run is byte-identical to serial,
   clean and under a committed fault schedule (faults retry requests,
   recomputing k-best from scratch on the same artifact). *)
let test_ranked_domain_stress () =
  let reqs = ranked_requests () in
  let total = List.length reqs in
  let render rs =
    String.concat "\n" (List.map (Protocol.response_to_json ~times:false) rs)
  in
  let serial =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    render (List.map (Exec.run reg) reqs)
  in
  let parallel () =
    let reg = Registry.create ~result_cap:0 () in
    List.iter (fun r -> ignore (Registry.get reg r.Protocol.cfg)) reqs;
    let sched = Scheduler.create ~domains:4 ~queue_cap:128 ~registry:reg () in
    let out = Array.make total None in
    List.iteri
      (fun i r -> Scheduler.submit sched r (fun resp -> out.(i) <- Some resp))
      reqs;
    Scheduler.shutdown sched;
    render (Array.to_list (Array.map Option.get out))
  in
  check_string "4-domain ranked output byte-identical to serial" serial
    (parallel ());
  let faulted =
    with_schedule "seed=11;exec.run:fail:0.4;registry.get:corrupt:0.4"
      (fun () -> parallel ())
  in
  check_string "identical under fault schedule too" serial faulted

let suite =
  [ Alcotest.test_case "semiring laws" `Quick test_semiring_laws;
    Alcotest.test_case "mass hand oracle (ss)" `Quick test_mass_oracle;
    Alcotest.test_case "kbest hand oracle (ss)" `Quick test_kbest_oracle;
    Alcotest.test_case "inside/outside consistency" `Quick
      test_inside_outside_consistency;
    Alcotest.test_case "weight-table validation" `Quick
      test_weights_validation;
    Alcotest.test_case "interning basics" `Quick test_intern_basic;
    Alcotest.test_case "interning cutoff probe" `Quick
      test_intern_cutoff_probe;
    Alcotest.test_case "wire: kbest + mass" `Quick test_wire_kbest_and_mass;
    Alcotest.test_case "4-domain ranked stress" `Slow
      test_ranked_domain_stress ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_counting_differential;
        qcheck_kbest_properties;
        qcheck_intern_transparent ]
